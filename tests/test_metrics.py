"""Unit tests for metrics collection and summary statistics."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.metrics.collector import MetricsCollector
from repro.metrics.stats import (
    percentile,
    summarize_latencies,
    throughput_timeline,
)


class TestPercentile:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_out_of_range_fraction_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_single_value(self):
        assert percentile([42.0], 0.99) == 42.0

    def test_median_of_odd_list(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 0.25) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5.0, 1.0, 9.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 9.0

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False,
                              allow_subnormal=False), min_size=1, max_size=100))
    def test_percentile_bounded_by_min_max(self, values):
        for fraction in (0.0, 0.25, 0.5, 0.9, 1.0):
            result = percentile(values, fraction)
            assert min(values) <= result <= max(values)

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False,
                              allow_subnormal=False), min_size=2, max_size=100))
    def test_percentile_monotone_in_fraction(self, values):
        assert percentile(values, 0.25) <= percentile(values, 0.75)


class TestSummaries:
    def test_summary_fields(self):
        summary = summarize_latencies([10.0, 20.0, 30.0, 40.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(25.0)
        assert summary.minimum == 10.0
        assert summary.maximum == 40.0
        assert summary.median == pytest.approx(25.0)

    def test_summary_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_latencies([])

    def test_summary_str_mentions_mean(self):
        text = str(summarize_latencies([5.0, 15.0]))
        assert "mean=10.0ms" in text

    def test_p999_interpolates_between_top_order_statistics(self):
        # With n=10 the 99.9th percentile sits at position 0.999 * 9 = 8.991,
        # between the two largest samples — interpolation, not a crash or a
        # silent clamp to the maximum.
        summary = summarize_latencies([float(v) for v in range(1, 11)])
        assert summary.p999 == pytest.approx(9.991)
        assert summary.p99 <= summary.p999 <= summary.maximum

    def test_p999_degenerates_to_the_sample_for_tiny_inputs(self):
        assert summarize_latencies([42.0]).p999 == 42.0

    def test_summary_str_mentions_p999(self):
        assert "p999=" in str(summarize_latencies([5.0, 15.0]))

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False,
                              allow_subnormal=False), min_size=1, max_size=200))
    def test_p999_dominates_p99(self, values):
        summary = summarize_latencies(values)
        assert summary.p99 <= summary.p999 <= summary.maximum


class TestThroughputTimeline:
    def test_buckets_counted_per_second(self):
        completions = [100.0, 200.0, 900.0, 1100.0, 1900.0]
        series = throughput_timeline(completions, bucket_ms=1000.0, end_ms=2000.0)
        assert series[0] == (0.0, 3.0)
        assert series[1] == (1000.0, 2.0)

    def test_empty_input(self):
        series = throughput_timeline([], bucket_ms=1000.0, end_ms=2000.0)
        assert all(rate == 0.0 for _, rate in series)

    def test_bad_bucket_rejected(self):
        with pytest.raises(ValueError):
            throughput_timeline([1.0], bucket_ms=0.0)

    def test_out_of_window_samples_ignored(self):
        series = throughput_timeline([50.0, 5000.0], bucket_ms=1000.0, start_ms=0.0,
                                     end_ms=2000.0)
        assert sum(rate for _, rate in series) == pytest.approx(1.0)

    def test_partial_last_bucket_scaled_by_actual_width(self):
        # Regression: a 2.5s window with 1s buckets leaves a 500ms-wide final
        # bucket.  Its 3 completions are 6 commands/second over the width it
        # actually spans — dividing by the nominal 1000ms used to dilute the
        # edge of every timeline whose window was not a bucket multiple.
        completions = [2100.0, 2200.0, 2400.0]
        series = throughput_timeline(completions, bucket_ms=1000.0, end_ms=2500.0)
        assert [start for start, _ in series] == [0.0, 1000.0, 2000.0]
        assert series[-1][1] == pytest.approx(6.0)

    def test_sample_on_window_end_counts_in_final_bucket(self):
        series = throughput_timeline([2500.0], bucket_ms=1000.0, end_ms=2500.0)
        assert series[-1][1] == pytest.approx(2.0)  # 1 command over 500ms

    def test_drop_partial_omits_the_trailing_sliver(self):
        completions = [100.0, 2100.0]
        series = throughput_timeline(completions, bucket_ms=1000.0, end_ms=2500.0,
                                     drop_partial=True)
        assert [start for start, _ in series] == [0.0, 1000.0]

    def test_full_buckets_unaffected_by_scaling(self):
        completions = [500.0, 1500.0]
        series = throughput_timeline(completions, bucket_ms=1000.0, end_ms=2000.0)
        assert series == [(0.0, 1.0), (1000.0, 1.0)]


class TestCollector:
    def test_warmup_samples_discarded(self):
        collector = MetricsCollector(warmup_ms=1000.0)
        collector.record_command(origin=0, proposer=0, latency_ms=10.0, completed_at=500.0,
                                 key="k")
        collector.record_command(origin=0, proposer=0, latency_ms=10.0, completed_at=1500.0,
                                 key="k")
        assert collector.count == 1
        assert collector.discarded == 1

    def test_sample_on_warmup_boundary_is_kept(self):
        collector = MetricsCollector(warmup_ms=1000.0)
        collector.record_command(origin=0, proposer=0, latency_ms=5.0,
                                 completed_at=1000.0, key="k")
        assert collector.count == 1
        assert collector.discarded == 0

    def test_zero_warmup_keeps_everything(self):
        collector = MetricsCollector(warmup_ms=0.0)
        collector.record_command(origin=0, proposer=0, latency_ms=5.0,
                                 completed_at=0.0, key="k")
        assert collector.count == 1
        assert collector.discarded == 0

    def test_per_origin_filtering(self):
        collector = MetricsCollector()
        collector.record_command(origin=0, proposer=0, latency_ms=10.0, completed_at=1.0, key="k")
        collector.record_command(origin=1, proposer=1, latency_ms=30.0, completed_at=2.0, key="k")
        assert collector.latencies(origin=0) == [10.0]
        assert collector.latencies() == [10.0, 30.0]
        summaries = collector.per_origin_summaries()
        assert set(summaries) == {0, 1}
        assert summaries[1].mean == pytest.approx(30.0)

    def test_summary_none_when_empty(self):
        assert MetricsCollector().summary() is None

    def test_throughput_requires_positive_duration(self):
        collector = MetricsCollector()
        with pytest.raises(ValueError):
            collector.throughput(0.0)

    def test_throughput_per_second(self):
        collector = MetricsCollector()
        for i in range(10):
            collector.record_command(origin=0, proposer=0, latency_ms=1.0,
                                     completed_at=float(i), key="k")
        assert collector.throughput(duration_ms=2000.0) == pytest.approx(5.0)

    def test_timeline_delegates_to_stats(self):
        collector = MetricsCollector()
        collector.record_command(origin=0, proposer=0, latency_ms=1.0, completed_at=100.0,
                                 key="k")
        series = collector.timeline(bucket_ms=1000.0, end_ms=1000.0)
        assert series[0][1] == pytest.approx(1.0)
