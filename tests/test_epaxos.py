"""Integration and unit tests for the EPaxos baseline."""

from __future__ import annotations

import pytest

from repro.baselines.epaxos import EPaxosReplica, InstanceStatus
from repro.consensus.interface import DecisionKind
from repro.consensus.quorums import QuorumSystem
from repro.kvstore.store import KeyValueStore
from repro.sim.network import Network
from repro.sim.simulator import Simulator
from repro.sim.topology import ec2_five_sites, uniform_topology
from tests.conftest import make_command


def build_epaxos_cluster(n: int = 5, seed: int = 1, recovery: bool = False, topology=None):
    topology = topology or (ec2_five_sites() if n == 5 else uniform_topology(n, rtt_ms=40.0))
    sim = Simulator(seed=seed)
    network = Network(sim, topology)
    quorums = QuorumSystem.for_cluster(n)
    replicas = [EPaxosReplica(i, sim, network, quorums, KeyValueStore(),
                              recovery_enabled=recovery) for i in range(n)]
    if recovery:
        for replica in replicas:
            replica.start()
    return sim, network, replicas


def submit_and_run(sim, replicas, commands, deadline_ms=60000):
    for origin, command in commands:
        replicas[origin].submit(command)
    ids = [c.command_id for _, c in commands]
    return sim.run_until(
        lambda: all(r.has_executed(cid) for r in replicas if not r.crashed for cid in ids),
        deadline=deadline_ms)


class TestFastPath:
    def test_non_conflicting_command_commits_fast(self):
        sim, _, replicas = build_epaxos_cluster()
        command = make_command(0, 0, key="a", origin=0)
        assert submit_and_run(sim, replicas, [(0, command)])
        assert replicas[0].stats.fast_decisions == 1
        assert replicas[0].stats.slow_decisions == 0
        assert replicas[0].decisions[command.command_id].kind is DecisionKind.FAST

    def test_fast_path_uses_smaller_quorum_than_caesar(self, topology):
        """EPaxos' fast decision from Virginia needs only the 3rd-closest node."""
        sim, _, replicas = build_epaxos_cluster()
        command = make_command(0, 0, key="a", origin=0)
        assert submit_and_run(sim, replicas, [(0, command)])
        latency = replicas[0].decisions[command.command_id].latency_ms
        assert latency == pytest.approx(topology.quorum_latency(0, 3), rel=0.15)

    def test_all_replicas_execute(self):
        sim, _, replicas = build_epaxos_cluster()
        commands = [(i, make_command(i, 0, key=f"k{i}", origin=i)) for i in range(5)]
        assert submit_and_run(sim, replicas, commands)
        assert all(r.commands_executed == 5 for r in replicas)


class TestSlowPath:
    def test_dependency_disagreement_forces_slow_path(self):
        """Concurrent conflicting commands from distant sites take the slow path."""
        sim, _, replicas = build_epaxos_cluster(seed=2)
        commands = [(i, make_command(i, k, key="hot", origin=i))
                    for i in range(5) for k in range(6)]
        assert submit_and_run(sim, replicas, commands, deadline_ms=120000)
        slow = sum(r.stats.slow_decisions for r in replicas)
        assert slow > 0

    def test_conflicting_order_consistent_across_replicas(self):
        sim, _, replicas = build_epaxos_cluster(seed=3)
        commands = [(i, make_command(i, k, key=f"hot-{k % 2}", origin=i))
                    for i in range(5) for k in range(5)]
        assert submit_and_run(sim, replicas, commands, deadline_ms=120000)
        for i in range(5):
            for j in range(i + 1, 5):
                assert replicas[i].execution_log.conflicting_order_violations(
                    replicas[j].execution_log) == []

    def test_state_machines_converge(self):
        sim, _, replicas = build_epaxos_cluster(seed=4)
        commands = [(i, make_command(i, k, key=f"hot-{k % 3}", origin=i))
                    for i in range(5) for k in range(4)]
        assert submit_and_run(sim, replicas, commands, deadline_ms=120000)
        snapshots = [r.state_machine.snapshot() for r in replicas]
        assert all(s == snapshots[0] for s in snapshots)

    def test_graph_execution_visits_dependencies(self):
        sim, _, replicas = build_epaxos_cluster(seed=5)
        commands = [(i, make_command(i, k, key="hot", origin=i))
                    for i in range(3) for k in range(3)]
        assert submit_and_run(sim, replicas, commands, deadline_ms=120000)
        assert sum(r.stats.graph_nodes_visited for r in replicas) > 0


class TestRecovery:
    def test_instance_recovered_after_leader_crash(self):
        sim, _, replicas = build_epaxos_cluster(recovery=True, seed=6)
        command = make_command(0, 0, key="x", origin=0)
        replicas[0].submit(command)
        sim.run(until=sim.now + 40.0)  # PreAccepts delivered, commit not yet sent
        replicas[0].crash()
        done = sim.run_until(
            lambda: all(r.has_executed(command.command_id)
                        for r in replicas if not r.crashed),
            deadline=60000)
        assert done
        assert sum(r.stats.recoveries for r in replicas if not r.crashed) >= 1

    def test_unknown_instance_recovered_as_noop(self):
        """If no live replica knows the command, recovery commits a no-op."""
        sim, _, replicas = build_epaxos_cluster(recovery=True, seed=7)
        command = make_command(0, 0, key="x", origin=0)
        # Simulate replica 1 having heard only a rumor of the instance: it has a
        # pre-accepted entry but nobody else does, then the leader crashes.
        replicas[0].submit(command)
        sim.run(until=sim.now + 3.0)  # only the closest site (Ohio) may have it
        replicas[0].crash()
        sim.run(until=sim.now + 5000.0)
        # Either the command was recovered or a no-op replaced it; in both
        # cases no live replica blocks forever on the instance.
        for replica in replicas[1:]:
            for instance in replica.instances.values():
                assert instance.status in (InstanceStatus.COMMITTED, InstanceStatus.EXECUTED,
                                           InstanceStatus.NOOP, InstanceStatus.PRE_ACCEPTED,
                                           InstanceStatus.ACCEPTED)

    def test_crash_of_follower_does_not_block(self):
        sim, _, replicas = build_epaxos_cluster(recovery=True, seed=8)
        replicas[4].crash()
        commands = [(0, make_command(0, k, key="x", origin=0)) for k in range(3)]
        assert submit_and_run(sim, replicas, commands, deadline_ms=60000)
