"""Framing layer: length prefixes, partial reads, and corrupt streams."""

from __future__ import annotations

import pytest

from repro.net.framing import (HEADER, MAX_FRAME_BYTES, FrameDecoder,
                               FramingError, encode_frame)
from repro.net.wire import Hello, StatsReply
from repro.runtime.registry import WIRE


class TestEncodeFrame:
    def test_prefixes_the_payload_length(self):
        frame = encode_frame(b"abc")
        assert frame == HEADER.pack(3) + b"abc"

    def test_rejects_oversized_payloads(self):
        with pytest.raises(FramingError):
            encode_frame(b"x" * (MAX_FRAME_BYTES + 1))


class TestFrameDecoder:
    def test_single_frame_roundtrip(self):
        decoder = FrameDecoder()
        assert list(decoder.feed(encode_frame(b"payload"))) == [b"payload"]
        assert decoder.buffered_bytes == 0

    def test_byte_at_a_time_delivery(self):
        """The pathological partial read: one byte per feed."""
        decoder = FrameDecoder()
        out = []
        for chunk in encode_frame(b"hello"):
            out.extend(decoder.feed(bytes([chunk])))
        assert out == [b"hello"]

    def test_many_frames_in_one_chunk(self):
        payloads = [b"a", b"", b"ccc", b"dddd"]
        stream = b"".join(encode_frame(p) for p in payloads)
        decoder = FrameDecoder()
        assert list(decoder.feed(stream)) == payloads

    def test_frame_split_across_chunks(self):
        stream = encode_frame(b"0123456789") + encode_frame(b"tail")
        decoder = FrameDecoder()
        out = list(decoder.feed(stream[:7]))
        assert out == []
        # The 4-byte header is consumed as soon as it is complete; the 3
        # partial payload bytes stay buffered.
        assert decoder.buffered_bytes == 3
        out = list(decoder.feed(stream[7:]))
        assert out == [b"0123456789", b"tail"]

    def test_oversized_length_fails_fast(self):
        decoder = FrameDecoder()
        with pytest.raises(FramingError):
            list(decoder.feed(HEADER.pack(MAX_FRAME_BYTES + 1)))

    def test_registered_messages_roundtrip_through_frames(self):
        """The wire format is exactly: frame(registry-encoded message)."""
        messages = [Hello(sender=3, role=1),
                    StatsReply(sender=0, payload='{"commands_executed": 7}')]
        stream = b"".join(encode_frame(WIRE.encode(m)) for m in messages)
        decoder = FrameDecoder()
        decoded = [WIRE.decode_one(p) for p in decoder.feed(stream)]
        assert decoded == messages
