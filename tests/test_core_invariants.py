"""Tests for the runtime invariant checkers (TLA+ GraphInvariant / Agreement)."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.consensus.ballots import Ballot
from repro.consensus.timestamps import LogicalTimestamp
from repro.core.history import CommandStatus
from repro.core.invariants import (
    check_agreement,
    check_all,
    check_execution_consistency,
    check_graph_invariant,
    check_timestamp_order,
)
from tests.conftest import build_caesar_cluster, make_command


def run_conflicting_workload(n_commands_per_node: int = 4, seed: int = 1,
                             wait_condition: bool = True):
    sim, _, replicas = build_caesar_cluster(seed=seed, wait_condition=wait_condition)
    commands = [(i, make_command(i, k, key=f"hot-{k % 2}", origin=i))
                for i in range(5) for k in range(n_commands_per_node)]
    for origin, command in commands:
        replicas[origin].submit(command)
    ids = [c.command_id for _, c in commands]
    finished = sim.run_until(
        lambda: all(r.has_executed(cid) for r in replicas for cid in ids),
        deadline=200000)
    assert finished
    return replicas


class TestCheckersOnHealthyRuns:
    def test_all_invariants_hold_after_conflicting_workload(self):
        replicas = run_conflicting_workload()
        assert check_all(replicas) == []

    def test_all_invariants_hold_without_wait_condition(self):
        replicas = run_conflicting_workload(wait_condition=False, seed=3)
        assert check_all(replicas) == []

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_invariants_hold_across_seeds(self, seed):
        replicas = run_conflicting_workload(n_commands_per_node=3, seed=seed)
        assert check_all(replicas) == []


class TestCheckersDetectViolations:
    def test_agreement_violation_detected(self):
        """Two replicas holding different stable timestamps for one command."""
        _, _, replicas = build_caesar_cluster()
        command = make_command(0, 0, key="x")
        replicas[0].history.update(command, LogicalTimestamp(1, 0), set(),
                                   CommandStatus.STABLE, Ballot.initial(0))
        replicas[1].history.update(command, LogicalTimestamp(9, 0), set(),
                                   CommandStatus.STABLE, Ballot.initial(0))
        violations = check_agreement(replicas)
        assert len(violations) == 1
        assert "stable at" in violations[0]

    def test_graph_invariant_violation_detected(self):
        """A stable later command missing its earlier conflicting predecessor."""
        _, _, replicas = build_caesar_cluster()
        replica = replicas[0]
        early = make_command(0, 0, key="x")
        late = make_command(1, 0, key="x")
        replica.history.update(early, LogicalTimestamp(1, 0), set(),
                               CommandStatus.STABLE, Ballot.initial(0))
        replica.history.update(late, LogicalTimestamp(5, 1), set(),
                               CommandStatus.STABLE, Ballot.initial(1))
        violations = check_graph_invariant([replica])
        assert len(violations) == 1
        assert "missing from predecessors" in violations[0]

    def test_graph_invariant_execution_order_violation_detected(self):
        _, _, replicas = build_caesar_cluster()
        replica = replicas[0]
        early = make_command(0, 0, key="x")
        late = make_command(1, 0, key="x")
        replica.history.update(early, LogicalTimestamp(1, 0), set(),
                               CommandStatus.STABLE, Ballot.initial(0))
        replica.history.update(late, LogicalTimestamp(5, 1), {early.command_id},
                               CommandStatus.STABLE, Ballot.initial(1))
        # Execute them in the wrong order directly.
        replica.execution_log.append(late)
        replica.execution_log.append(early)
        violations = check_graph_invariant([replica])
        assert any("before" in violation for violation in violations)

    def test_execution_consistency_violation_detected(self):
        _, _, replicas = build_caesar_cluster()
        first = make_command(0, 0, key="x")
        second = make_command(1, 0, key="x")
        replicas[0].execution_log.append(first)
        replicas[0].execution_log.append(second)
        replicas[1].execution_log.append(second)
        replicas[1].execution_log.append(first)
        violations = check_execution_consistency(replicas)
        assert len(violations) == 1
        assert "disagree" in violations[0]

    def test_timestamp_order_violation_detected(self):
        _, _, replicas = build_caesar_cluster()
        replica = replicas[0]
        early = make_command(0, 0, key="x")
        late = make_command(1, 0, key="x")
        replica.history.update(early, LogicalTimestamp(7, 0), set(),
                               CommandStatus.STABLE, Ballot.initial(0))
        replica.history.update(late, LogicalTimestamp(2, 1), set(),
                               CommandStatus.STABLE, Ballot.initial(1))
        replica.execution_log.append(early)
        replica.execution_log.append(late)
        violations = check_timestamp_order([replica])
        assert len(violations) == 1

    def test_crashed_replicas_are_skipped(self):
        _, _, replicas = build_caesar_cluster()
        command = make_command(0, 0, key="x")
        replicas[0].history.update(command, LogicalTimestamp(1, 0), set(),
                                   CommandStatus.STABLE, Ballot.initial(0))
        replicas[1].history.update(command, LogicalTimestamp(9, 0), set(),
                                   CommandStatus.STABLE, Ballot.initial(0))
        replicas[1].crashed = True
        assert check_agreement(replicas) == []
