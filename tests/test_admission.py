"""Unit and integration tests for the admission-control policies.

The policies (:mod:`repro.runtime.admission`) guard the replica submit path
on both substrates; these tests cover the spec parsing, the per-policy
shedding rules, the counter aggregation, and the simulator submit-path
integration (rejected callbacks, client bookkeeping, experiment snapshots).
"""

from __future__ import annotations

import pytest

from repro.consensus.quorums import QuorumSystem
from repro.core.caesar import CaesarReplica
from repro.core.config import CaesarConfig
from repro.harness.experiment import (ExperimentConfig, run_experiment,
                                      summarize_experiment)
from repro.kvstore.store import KeyValueStore
from repro.metrics.collector import MetricsCollector
from repro.runtime.admission import (AdmissionPolicy, InflightLimit, NoAdmission,
                                     QueueDeadline, admission_policy,
                                     aggregate_admission)
from repro.sim.network import Network
from repro.sim.random import DeterministicRandom
from repro.sim.simulator import Simulator
from repro.sim.topology import uniform_topology
from repro.workload.clients import ClientPool, ClosedLoopClient, OpenLoopClient
from repro.workload.generator import ConflictWorkload, WorkloadConfig


class TestSpecParsing:
    def test_none_and_empty_mean_no_hook(self):
        assert admission_policy(None) is None
        assert admission_policy("") is None

    def test_counting_baseline(self):
        policy = admission_policy("none")
        assert isinstance(policy, NoAdmission)
        assert policy.describe() == "none"

    def test_inflight_with_parameter(self):
        policy = admission_policy("inflight:4")
        assert isinstance(policy, InflightLimit)
        assert policy.limit == 4
        assert policy.describe() == "inflight:4"

    def test_deadline_with_parameter(self):
        policy = admission_policy("deadline:250")
        assert isinstance(policy, QueueDeadline)
        assert policy.deadline_ms == 250.0
        assert policy.describe() == "deadline:250"

    def test_bare_names_use_defaults(self):
        assert admission_policy("inflight").limit == 64
        assert admission_policy("deadline").deadline_ms == 500.0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown admission policy"):
            admission_policy("lifo:3")

    def test_none_with_parameter_rejected(self):
        with pytest.raises(ValueError):
            admission_policy("none:5")

    def test_bad_parameter_rejected(self):
        with pytest.raises(ValueError, match="bad admission policy parameter"):
            admission_policy("inflight:lots")

    def test_invalid_constructor_arguments_rejected(self):
        with pytest.raises(ValueError):
            InflightLimit(max_inflight=0)
        with pytest.raises(ValueError):
            QueueDeadline(deadline_ms=0.0)

    def test_roundtrip_through_describe(self):
        for spec in ("none", "inflight:7", "deadline:125"):
            assert admission_policy(spec).describe() == spec


class TestInflightLimit:
    def test_rejects_at_the_limit_and_recovers_on_release(self):
        policy = InflightLimit(max_inflight=2)
        assert policy.try_admit((0, 0), now=0.0) is None
        assert policy.try_admit((0, 1), now=1.0) is None
        reason = policy.try_admit((0, 2), now=2.0)
        assert reason is not None and "inflight limit 2" in reason
        policy.release((0, 0), now=3.0)
        assert policy.try_admit((0, 3), now=4.0) is None

    def test_counters(self):
        policy = InflightLimit(max_inflight=1)
        policy.try_admit((0, 0), now=0.0)
        policy.try_admit((0, 1), now=1.0)
        assert policy.stats.admitted == 1
        assert policy.stats.rejected == 1
        assert policy.stats.rejected_inflight == 1
        assert policy.stats.shed_deadline == 0
        assert policy.stats.max_inflight == 1
        assert policy.stats.as_dict()["rejected"] == 1

    def test_release_of_unknown_id_is_ignored(self):
        policy = InflightLimit(max_inflight=1)
        policy.release((9, 9), now=0.0)
        assert policy.inflight == 0


class TestQueueDeadline:
    def test_sheds_while_head_of_queue_is_stale(self):
        policy = QueueDeadline(deadline_ms=100.0)
        assert policy.try_admit((0, 0), now=0.0) is None
        # Head of queue within deadline: still admitting.
        assert policy.try_admit((0, 1), now=50.0) is None
        # Head is now 150ms old: new arrivals are doomed, shed them.
        reason = policy.try_admit((0, 2), now=150.0)
        assert reason is not None and "deadline" in reason
        assert policy.stats.shed_deadline == 1
        # Once the stale head drains, admission resumes.
        policy.release((0, 0), now=160.0)
        policy.release((0, 1), now=160.0)
        assert policy.try_admit((0, 3), now=170.0) is None

    def test_empty_queue_never_sheds(self):
        policy = QueueDeadline(deadline_ms=1.0)
        assert policy.oldest_age_ms(now=1000.0) == 0.0
        assert policy.try_admit((0, 0), now=1000.0) is None


class TestAggregation:
    def test_no_policies_yields_none(self):
        assert aggregate_admission([None, None]) is None
        assert aggregate_admission([]) is None

    def test_counters_are_summed_and_max_inflight_maxed(self):
        first, second = InflightLimit(1), InflightLimit(2)
        first.try_admit((0, 0), now=0.0)
        first.try_admit((0, 1), now=1.0)  # rejected
        second.try_admit((1, 0), now=0.0)
        second.try_admit((1, 1), now=1.0)
        snapshot = aggregate_admission([first, None, second])
        assert snapshot.policy == "inflight:1"
        assert snapshot.stats.admitted == 3
        assert snapshot.stats.rejected == 1
        assert snapshot.stats.max_inflight == 2
        assert snapshot.as_dict()["policy"] == "inflight:1"


def build_single_replica():
    """One-node CAESAR 'cluster' (same shape as tests/test_workload.py)."""
    sim = Simulator(seed=2)
    network = Network(sim, uniform_topology(3, rtt_ms=10.0))
    quorums = QuorumSystem.for_cluster(3)
    config = CaesarConfig(recovery_enabled=False)
    replicas = [CaesarReplica(i, sim, network, quorums, KeyValueStore(), config=config)
                for i in range(3)]
    return sim, replicas


class _RejectAll(AdmissionPolicy):
    """Test stub: sheds every submission."""

    name = "reject-all"

    def _check(self, now):
        return "always rejected"


class TestSubmitPathIntegration:
    def test_shed_submission_fires_callback_with_rejected_result(self):
        sim, replicas = build_single_replica()
        replicas[0].admission = InflightLimit(max_inflight=1)
        workload = ConflictWorkload(0, 0, WorkloadConfig(), DeterministicRandom(1))
        results = []
        # Two back-to-back submissions: the first occupies the single
        # inflight slot, the second must be rejected synchronously.
        replicas[0].submit(workload.next_command(), callback=results.append)
        replicas[0].submit(workload.next_command(), callback=results.append)
        assert len(results) == 1  # no simulator time has passed yet
        assert results[0].rejected
        sim.run(until=500.0)
        assert len(results) == 2
        rejected = [result for result in results if result.rejected]
        assert len(rejected) == 1
        assert replicas[0].admission.stats.admitted == 1
        assert replicas[0].admission.stats.rejected == 1

    def test_execution_releases_the_inflight_slot(self):
        sim, replicas = build_single_replica()
        replicas[0].admission = InflightLimit(max_inflight=1)
        workload = ConflictWorkload(0, 0, WorkloadConfig(), DeterministicRandom(1))
        replicas[0].submit(workload.next_command(), callback=lambda result: None)
        sim.run(until=500.0)
        assert replicas[0].admission.inflight == 0
        replicas[0].submit(workload.next_command(), callback=lambda result: None)
        assert replicas[0].admission.stats.admitted == 2
        assert replicas[0].admission.stats.rejected == 0

    def test_closed_loop_rejections_consume_the_command_budget(self):
        # A closed-loop client whose every command is shed must still
        # terminate: rejections consume loop slots instead of hanging the
        # client waiting for completions that will never come.
        sim, replicas = build_single_replica()
        replicas[0].admission = _RejectAll()
        metrics = MetricsCollector()
        workload = ConflictWorkload(0, 0, WorkloadConfig(), DeterministicRandom(1))
        client = ClosedLoopClient(0, replicas[0], workload, sim, metrics,
                                  max_commands=5)
        client.start()
        sim.run(until=1000.0)
        assert client.rejected == 5
        assert client.completed == 0
        assert metrics.count == 0

    def test_closed_loop_rejection_storm_backs_off_instead_of_recursing(self):
        # Regression: with a full inflight limit a rejected closed-loop
        # client used to resubmit synchronously inside the rejection
        # callback — same virtual instant, unbounded recursion.  The client
        # must back off and virtual time must keep advancing.
        sim, replicas = build_single_replica()
        replicas[0].admission = InflightLimit(max_inflight=1)
        metrics = MetricsCollector()
        pool = ClientPool()
        for i in range(4):
            workload = ConflictWorkload(i, 0, WorkloadConfig(), DeterministicRandom(i))
            pool.add(ClosedLoopClient(i, replicas[0], workload, sim, metrics))
        pool.start_all()
        sim.run(until=500.0)
        pool.stop_all()
        assert sim.now >= 500.0
        assert pool.total_rejected > 0
        assert pool.total_completed > 0

    def test_open_loop_counts_rejections_without_sampling_them(self):
        sim, replicas = build_single_replica()
        replicas[0].admission = InflightLimit(max_inflight=1)
        metrics = MetricsCollector()
        workload = ConflictWorkload(0, 0, WorkloadConfig(), DeterministicRandom(1))
        client = OpenLoopClient(0, replicas[0], workload, sim, metrics,
                                rate_per_second=500.0, rng=DeterministicRandom(5))
        client.start()
        sim.run(until=1000.0)
        client.stop()
        sim.run(until=1500.0)
        assert client.rejected > 0
        assert client.completed > 0
        assert metrics.count == client.completed
        assert client.completed + client.rejected <= client.submitted


class TestExperimentIntegration:
    def test_experiment_snapshot_and_summary_report_admission(self):
        config = ExperimentConfig(protocol="caesar", clients_per_site=2,
                                  open_loop=True, arrival_rate_per_client=60.0,
                                  duration_ms=800.0, warmup_ms=100.0, seed=4,
                                  admission="inflight:2")
        result = run_experiment(config)
        snapshot = result.cluster.admission_snapshot()
        assert snapshot is not None
        assert snapshot.policy == "inflight:2"
        assert snapshot.stats.admitted > 0
        assert snapshot.stats.rejected > 0
        summary = summarize_experiment(result)
        assert summary["admission"]["policy"] == "inflight:2"
        assert summary["admission"]["rejected"] == snapshot.stats.rejected

    def test_no_admission_means_no_snapshot(self):
        config = ExperimentConfig(protocol="caesar", clients_per_site=1,
                                  duration_ms=300.0, warmup_ms=0.0, seed=4)
        result = run_experiment(config)
        assert result.cluster.admission_snapshot() is None
        assert summarize_experiment(result)["admission"] is None
