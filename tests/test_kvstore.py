"""Unit tests for the key-value store state machine."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.consensus.command import Command
from repro.kvstore.store import KeyValueStore
from tests.conftest import make_command


class TestOperations:
    def test_put_returns_previous_value(self):
        store = KeyValueStore()
        assert store.apply(make_command(0, 0, key="k")) is None
        second = Command(command_id=(0, 1), key="k", operation="put", value="new")
        assert store.apply(second) == "v0.0"
        assert store.get("k") == "new"

    def test_get_returns_current_value(self):
        store = KeyValueStore()
        store.apply(make_command(0, 0, key="k"))
        read = Command(command_id=(1, 0), key="k", operation="get")
        assert store.apply(read) == "v0.0"

    def test_get_missing_key_returns_none(self):
        store = KeyValueStore()
        assert store.apply(Command(command_id=(0, 0), key="nope", operation="get")) is None

    def test_delete_removes_and_returns(self):
        store = KeyValueStore()
        store.apply(make_command(0, 0, key="k"))
        removed = store.apply(Command(command_id=(0, 1), key="k", operation="delete"))
        assert removed == "v0.0"
        assert store.get("k") is None

    def test_put_none_value_stores_empty_string(self):
        store = KeyValueStore()
        store.apply(Command(command_id=(0, 0), key="k", operation="put", value=None))
        assert store.get("k") == ""

    def test_unknown_operation_raises(self):
        store = KeyValueStore()
        with pytest.raises(ValueError):
            store.apply(Command(command_id=(0, 0), key="k", operation="increment"))

    def test_len_counts_keys(self):
        store = KeyValueStore()
        store.apply(make_command(0, 0, key="a"))
        store.apply(make_command(0, 1, key="b"))
        assert len(store) == 2

    def test_snapshot_and_reset(self):
        store = KeyValueStore()
        store.apply(make_command(0, 0, key="a"))
        snapshot = store.snapshot()
        assert snapshot == {"a": "v0.0"}
        store.reset()
        assert len(store) == 0
        assert store.applied_count == 0
        # Snapshot is a copy, unaffected by the reset.
        assert snapshot == {"a": "v0.0"}

    def test_applied_count_increments(self):
        store = KeyValueStore()
        for i in range(5):
            store.apply(make_command(0, i, key=f"k{i}"))
        assert store.applied_count == 5


class TestDeterminism:
    @given(st.lists(st.tuples(st.integers(0, 4), st.sampled_from(["put", "get", "delete"]),
                              st.text(alphabet="ab", min_size=1, max_size=2)),
                    min_size=1, max_size=40))
    def test_same_sequence_same_state_and_results(self, operations):
        """Applying the same command sequence to two stores is deterministic."""
        store_a, store_b = KeyValueStore(), KeyValueStore()
        results_a, results_b = [], []
        for index, (client, op, key) in enumerate(operations):
            command = Command(command_id=(client, index), key=key, operation=op,
                              value=f"val{index}")
            results_a.append(store_a.apply(command))
            results_b.append(store_b.apply(command))
        assert results_a == results_b
        assert store_a.snapshot() == store_b.snapshot()
