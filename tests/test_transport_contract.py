"""Conformance suite for the Transport contract, run over BOTH backends.

Every behaviour asserted here is part of the documented lifecycle in
:class:`repro.runtime.transport.Transport`; the suite is parametrized over
the simulator backend (:class:`SimulatorTransport` on a discrete-event
network) and the socket backend (:class:`AsyncioTransport` on a wall-clock
peer network), so the two substrates cannot drift apart silently.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.net.clock import WallClock
from repro.net.transport import PeerNetwork
from repro.net.wire import Hello
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.simulator import Simulator
from repro.sim.topology import lan_topology


class RecordingNode(Node):
    """A node that records every dispatched message."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.handled = []

    def handle_message(self, src: int, message: object) -> None:
        self.handled.append((src, message))


class SimulatorBackend:
    """Contract harness over the discrete-event substrate."""

    name = "simulator"

    def __init__(self) -> None:
        self.sim = Simulator(seed=1)
        self.network = Network(self.sim, lan_topology(3))
        self.nodes = [RecordingNode(i, self.sim, self.network) for i in range(3)]

    def call(self, fn):
        return fn()

    def advance(self, ms: float) -> None:
        self.sim.run(until=self.sim.now + ms)

    def close(self) -> None:
        pass


class AsyncioBackend:
    """Contract harness over the wall-clock/socket substrate.

    One locally hosted node; the two remote peers point at unreachable
    localhost ports, which is fine for the contract suite — drop-when-
    unreachable is part of the contract.
    """

    name = "asyncio"

    def __init__(self) -> None:
        self.loop = asyncio.new_event_loop()
        clock = WallClock(seed=1, loop=self.loop)
        peers = {0: ("127.0.0.1", 1), 1: ("127.0.0.1", 2), 2: ("127.0.0.1", 3)}
        self.network = PeerNetwork(clock, 0, peers)
        self.nodes = [RecordingNode(0, clock, self.network)]

    def call(self, fn):
        async def wrapper():
            return fn()

        return self.loop.run_until_complete(wrapper())

    def advance(self, ms: float) -> None:
        # Real milliseconds; contract delays are kept tiny on purpose.
        self.loop.run_until_complete(asyncio.sleep(ms / 1000.0))

    def close(self) -> None:
        self.call(lambda: self.nodes[0].transport.close())
        self.loop.run_until_complete(self.loop.shutdown_asyncgens())
        self.loop.close()


@pytest.fixture(params=[SimulatorBackend, AsyncioBackend], ids=["simulator", "asyncio"])
def backend(request):
    instance = request.param()
    yield instance
    instance.close()


def message() -> Hello:
    """Any registered message works as a payload."""
    return Hello(sender=7, role=0)


class TestTransportContract:
    def test_node_ids_lists_the_whole_cluster(self, backend):
        transport = backend.nodes[0].transport
        assert list(transport.node_ids) == [0, 1, 2]

    def test_timers_work_from_construction_before_start(self, backend):
        """Phase 1 of the lifecycle: timers are live before start()."""
        fired = []
        transport = backend.nodes[0].transport
        backend.call(lambda: transport.set_timer(5.0, lambda: fired.append(True)))
        assert fired == []
        backend.advance(50.0)
        assert fired == [True]

    def test_cancelled_timer_never_fires(self, backend):
        fired = []
        transport = backend.nodes[0].transport
        timer = backend.call(
            lambda: transport.set_timer(5.0, lambda: fired.append(True)))
        assert not timer.cancelled
        backend.call(lambda: transport.cancel_timer(timer))
        assert timer.cancelled
        backend.advance(50.0)
        assert fired == []

    def test_self_send_is_delivered_exactly_once(self, backend):
        node = backend.nodes[0]
        backend.call(lambda: node.transport.start())
        sent = message()
        backend.call(lambda: node.transport.send(0, sent))
        backend.advance(50.0)
        assert node.handled == [(0, sent)]

    def test_broadcast_without_self_skips_the_local_node(self, backend):
        node = backend.nodes[0]
        backend.call(lambda: node.transport.start())
        backend.call(lambda: node.transport.broadcast(message(), include_self=False))
        backend.advance(50.0)
        assert node.handled == []

    def test_broadcast_counts_a_send_per_destination(self, backend):
        node = backend.nodes[0]
        backend.call(lambda: node.transport.start())
        before = backend.network.stats.messages_sent
        backend.call(lambda: node.transport.broadcast(message()))
        backend.advance(50.0)
        assert backend.network.stats.messages_sent == before + 3

    def test_start_is_idempotent(self, backend):
        transport = backend.nodes[0].transport
        backend.call(lambda: transport.start())
        backend.call(lambda: transport.start())

    def test_sends_after_close_are_silent_noops(self, backend):
        node = backend.nodes[0]
        backend.call(lambda: node.transport.start())
        backend.call(lambda: node.transport.close())
        backend.call(lambda: node.transport.close())  # idempotent
        before = backend.network.stats.messages_sent
        backend.call(lambda: node.transport.send(0, message()))
        backend.advance(50.0)
        assert node.handled == []
        assert backend.network.stats.messages_sent == before


class TestAsyncioSpecifics:
    """Socket-only behaviours outside the shared contract."""

    def test_unreachable_peer_counts_a_drop(self):
        backend = AsyncioBackend()
        try:
            node = backend.nodes[0]
            backend.call(lambda: node.transport.start())
            backend.call(lambda: node.transport.send(1, message()))
            assert backend.network.stats.messages_dropped == 1
        finally:
            backend.close()

    def test_peer_network_rejects_foreign_registrations(self):
        backend = AsyncioBackend()
        try:
            class Foreign:
                node_id = 2
                crashed = False

            with pytest.raises(ValueError):
                backend.network.register(Foreign())
        finally:
            backend.close()

    def test_batching_is_rejected(self):
        backend = AsyncioBackend()
        try:
            with pytest.raises(NotImplementedError):
                backend.network.create_transport(backend.nodes[0], batching=object())
        finally:
            backend.close()
