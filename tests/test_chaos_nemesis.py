"""Unit tests for the fault data plane, the nemesis, and delivery semantics.

Includes the pinned regressions for the in-flight delivery audit: messages
heading towards a node that crashes (even with a later restart) or a link
that partitions while the message is on the wire must be *dropped*, never
silently delivered after the fact.
"""

from __future__ import annotations

import pytest

from repro.chaos.faults import LinkFaults, cross_links, symmetric_links
from repro.chaos.nemesis import (
    CONFORMANCE_SCHEDULES,
    NEMESIS_SCHEDULES,
    ClockSkewFault,
    DelaySpikeFault,
    Nemesis,
    NemesisPlan,
    PartitionFault,
    build_schedule,
    random_plan,
)
from repro.harness.cluster import ClusterConfig, build_cluster
from repro.sim.network import Network, NetworkConfig
from repro.sim.node import Node
from repro.sim.random import DeterministicRandom
from repro.sim.simulator import Simulator
from repro.sim.topology import uniform_topology


class RecorderNode(Node):
    """Node that records every handled message as ``(src, payload, time)``."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.handled = []

    def handle_message(self, src: int, message: object) -> None:
        self.handled.append((src, message, self.sim.now))


def build_nodes(n: int = 3, rtt: float = 20.0, seed: int = 1):
    sim = Simulator(seed=seed)
    network = Network(sim, uniform_topology(n, rtt_ms=rtt), NetworkConfig())
    nodes = [RecorderNode(i, sim, network) for i in range(n)]
    return sim, network, nodes


def install_faults(sim, network, nodes) -> LinkFaults:
    faults = LinkFaults(sim, network, sim.rng.fork("nemesis"))
    for node in nodes:
        node.transport.install_fault_filter(faults)
    return faults


def payloads(node) -> list:
    return [message for _, message, _ in node.handled]


class TestLinkFaults:
    def test_queue_block_holds_and_releases_in_order(self):
        sim, network, nodes = build_nodes()
        faults = install_faults(sim, network, nodes)
        faults.block([(0, 1)])
        nodes[0].send(1, "m1")
        nodes[0].send(1, "m2")
        sim.run(until=100.0)
        assert payloads(nodes[1]) == []
        assert faults.held_messages == 2
        faults.unblock([(0, 1)])
        sim.run(until=200.0)
        assert payloads(nodes[1]) == ["m1", "m2"]
        assert faults.stats.messages_held == 2
        assert faults.stats.messages_released == 2

    def test_drop_block_loses_messages_for_good(self):
        sim, network, nodes = build_nodes()
        faults = install_faults(sim, network, nodes)
        faults.block([(0, 1)], mode="drop")
        nodes[0].send(1, "gone")
        faults.unblock([(0, 1)])
        sim.run(until=200.0)
        assert payloads(nodes[1]) == []
        assert faults.stats.messages_dropped_on_block == 1
        assert faults.stats.messages_released == 0

    def test_block_is_per_direction(self):
        sim, network, nodes = build_nodes()
        faults = install_faults(sim, network, nodes)
        faults.block(cross_links([0], [1]))
        nodes[0].send(1, "blocked")
        nodes[1].send(0, "free")
        sim.run(until=100.0)
        assert payloads(nodes[1]) == []
        assert payloads(nodes[0]) == ["free"]

    def test_symmetric_links_cover_both_directions(self):
        links = symmetric_links([0, 1], [2])
        assert set(links) == {(0, 2), (1, 2), (2, 0), (2, 1)}

    def test_certain_loss_drops_everything(self):
        sim, network, nodes = build_nodes()
        faults = install_faults(sim, network, nodes)
        faults.set_loss([(0, 1)], 1.0)
        for i in range(5):
            nodes[0].send(1, f"m{i}")
        sim.run(until=100.0)
        assert payloads(nodes[1]) == []
        assert faults.stats.messages_dropped_by_loss == 5

    def test_certain_duplication_delivers_twice(self):
        sim, network, nodes = build_nodes()
        faults = install_faults(sim, network, nodes)
        faults.set_duplication([(0, 1)], 1.0)
        nodes[0].send(1, "twin")
        sim.run(until=100.0)
        assert payloads(nodes[1]) == ["twin", "twin"]
        assert faults.stats.messages_duplicated == 1

    def test_delay_spike_postpones_delivery(self):
        sim, network, nodes = build_nodes(rtt=20.0)
        faults = install_faults(sim, network, nodes)
        faults.set_delay_spike([(0, 1)], extra_ms=50.0)
        nodes[0].send(1, "late")
        sim.run(until=200.0)
        assert payloads(nodes[1]) == ["late"]
        _, _, when = nodes[1].handled[0]
        # 50ms spike + 10ms one-way delay (+ CPU dispatch epsilon).
        assert when >= 60.0

    def test_self_sends_never_intercepted(self):
        sim, network, nodes = build_nodes()
        faults = install_faults(sim, network, nodes)
        faults.block(cross_links([0], [0, 1, 2]))
        faults.set_loss(cross_links([0], [0, 1, 2]), 1.0)
        nodes[0].send(0, "to-myself")
        sim.run(until=100.0)
        assert payloads(nodes[0]) == ["to-myself"]

    def test_delayed_message_respects_block_installed_meanwhile(self):
        """A spiking message must not tunnel through a partition that starts
        while it is waiting out its extra delay."""
        sim, network, nodes = build_nodes()
        faults = install_faults(sim, network, nodes)
        faults.set_delay_spike([(0, 1)], extra_ms=50.0)
        nodes[0].send(1, "tunneled?")
        sim.schedule(10.0, lambda: faults.block([(0, 1)]))
        sim.run(until=200.0)
        assert payloads(nodes[1]) == []
        assert faults.held_messages == 1
        faults.unblock([(0, 1)])
        sim.run(until=300.0)
        assert payloads(nodes[1]) == ["tunneled?"]


class TestInFlightDeliverySemantics:
    """Pinned regressions: crashes and partitions kill in-flight messages."""

    def test_in_flight_message_across_crash_restart_is_dropped(self):
        sim, network, nodes = build_nodes(rtt=20.0)
        nodes[0].send(1, "doomed")  # one-way delay 10ms
        sim.schedule(2.0, nodes[1].crash)
        sim.schedule(5.0, nodes[1].restart)
        sim.run(until=100.0)
        assert not nodes[1].crashed
        assert payloads(nodes[1]) == []
        assert network.stats.messages_dead_in_flight == 1

    def test_message_sent_after_restart_is_delivered(self):
        sim, network, nodes = build_nodes(rtt=20.0)
        sim.schedule(2.0, nodes[1].crash)
        sim.schedule(5.0, nodes[1].restart)
        sim.schedule(6.0, lambda: nodes[0].send(1, "fresh"))
        sim.run(until=100.0)
        assert payloads(nodes[1]) == ["fresh"]
        assert network.stats.messages_dead_in_flight == 0

    def test_in_flight_message_into_fresh_partition_is_dropped(self):
        sim, network, nodes = build_nodes(rtt=20.0)
        nodes[0].send(1, "cut-off")
        sim.schedule(2.0, lambda: network.partition({0}, {1}))
        sim.run(until=100.0)
        assert payloads(nodes[1]) == []
        assert network.stats.messages_partitioned == 1

    def test_crash_records_crash_time(self):
        sim, network, nodes = build_nodes()
        assert nodes[1].last_crashed_at == -1.0
        sim.schedule(42.0, nodes[1].crash)
        sim.run(until=50.0)
        assert nodes[1].last_crashed_at == pytest.approx(42.0)


class TestClockSkew:
    def test_timer_scale_stretches_timer_delays(self):
        sim, network, nodes = build_nodes()
        fired = []
        nodes[0].timer_scale = 2.0
        nodes[0].set_timer(10.0, lambda: fired.append(sim.now))
        nodes[1].set_timer(10.0, lambda: fired.append(sim.now))
        sim.run(until=100.0)
        assert fired == [pytest.approx(10.0), pytest.approx(20.0)]

    def test_unit_scale_is_exact(self):
        sim, network, nodes = build_nodes()
        fired = []
        nodes[0].set_timer(7.3, lambda: fired.append(sim.now))
        sim.run(until=100.0)
        assert fired == [7.3]


class TestNemesis:
    def test_plan_quiesced_at_covers_every_fault(self):
        plan = NemesisPlan("p", (
            PartitionFault(at_ms=100.0, heal_at_ms=700.0, groups=((0, 1, 2), (3, 4))),
            DelaySpikeFault(at_ms=200.0, until_ms=900.0, extra_ms=10.0),))
        assert plan.quiesced_at_ms == 900.0

    def test_named_schedules_build_and_quiesce_within_window(self):
        for name in NEMESIS_SCHEDULES:
            plan = build_schedule(name, 5, 1000.0, 2000.0)
            assert plan.name == name
            assert plan.faults
            assert plan.quiesced_at_ms <= 3000.0 + 1e-9

    def test_unknown_schedule_raises(self):
        with pytest.raises(ValueError, match="unknown nemesis schedule"):
            build_schedule("nope", 5, 0.0, 1.0)

    def test_conformance_set_covers_whole_library(self):
        # Since the runtime retransmission + catch-up layer, every named
        # schedule — the lossy pair included — is a conformance obligation.
        assert set(CONFORMANCE_SCHEDULES) == set(NEMESIS_SCHEDULES)

    def test_only_the_known_pair_of_schedules_is_lossy(self):
        from repro.chaos.nemesis import CrashFault, LossFault

        lossy = set()
        for name in CONFORMANCE_SCHEDULES:
            plan = build_schedule(name, 5, 0.0, 1000.0)
            for fault in plan.faults:
                if (isinstance(fault, (LossFault, CrashFault))
                        or getattr(fault, "mode", "queue") != "queue"):
                    lossy.add(name)
        assert lossy == {"crash-restart", "flaky-links"}

    def test_nemesis_applies_and_heals_partition_on_schedule(self):
        cluster = build_cluster(ClusterConfig(protocol="caesar", seed=1))
        plan = NemesisPlan("p", (
            PartitionFault(at_ms=100.0, heal_at_ms=300.0, groups=((0, 1, 2), (3, 4))),))
        nemesis = Nemesis(cluster, plan)
        cluster.sim.run(until=150.0)
        assert nemesis.faults.is_blocked(0, 3)
        assert nemesis.faults.is_blocked(3, 0)
        assert not nemesis.faults.is_blocked(0, 1)
        cluster.sim.run(until=350.0)
        assert not nemesis.faults.is_blocked(0, 3)
        assert [what for _, what in nemesis.log] == [
            "partition ((0, 1, 2), (3, 4)) [queue, 12 links]",
            "heal partition ((0, 1, 2), (3, 4))"]

    def test_clock_skew_fault_sets_and_restores_scale(self):
        cluster = build_cluster(ClusterConfig(protocol="caesar", seed=1))
        plan = NemesisPlan("p", (
            ClockSkewFault(at_ms=100.0, until_ms=300.0, node_id=2, factor=4.0),))
        Nemesis(cluster, plan)
        cluster.sim.run(until=150.0)
        assert cluster.replicas[2].timer_scale == 4.0
        cluster.sim.run(until=350.0)
        assert cluster.replicas[2].timer_scale == 1.0

    def test_ensure_quiesced_force_heals(self):
        cluster = build_cluster(ClusterConfig(protocol="caesar", seed=1))
        plan = NemesisPlan("no-heal", (
            PartitionFault(at_ms=10.0, heal_at_ms=10_000.0, groups=((0, 1, 2), (3, 4))),))
        nemesis = Nemesis(cluster, plan)
        cluster.sim.run(until=50.0)
        assert nemesis.faults.is_blocked(0, 4)
        nemesis.ensure_quiesced()
        assert not nemesis.faults.is_blocked(0, 4)
        assert nemesis.faults.held_messages == 0

    def test_random_plan_is_deterministic_per_coordinates(self):
        root = DeterministicRandom(9)
        plan_a = random_plan(root.fork_cell(("chaos", 9, 0)), 5, 100.0, 1000.0)
        plan_b = random_plan(DeterministicRandom(9).fork_cell(("chaos", 9, 0)),
                             5, 100.0, 1000.0)
        assert plan_a == plan_b
        plan_c = random_plan(root.fork_cell(("chaos", 9, 1)), 5, 100.0, 1000.0)
        assert plan_c != plan_a

    def test_random_plan_heals_within_window(self):
        rng = DeterministicRandom(4)
        for index in range(10):
            plan = random_plan(rng.fork_cell(("w", index)), 5, 500.0, 2000.0,
                               include_lossy=True)
            assert plan.quiesced_at_ms <= 2500.0 + 1e-9
