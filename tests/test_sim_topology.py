"""Unit tests for latency topologies."""

from __future__ import annotations

import pytest

from repro.sim.topology import (
    EC2_SITES,
    Topology,
    custom_topology,
    ec2_five_sites,
    lan_topology,
    uniform_topology,
    wan_topology,
    with_replicas_per_site,
)


class TestEc2Topology:
    def test_five_sites_in_paper_order(self):
        topology = ec2_five_sites()
        assert topology.sites == ["virginia", "ohio", "frankfurt", "ireland", "mumbai"]
        assert topology.size == 5

    def test_mumbai_rtts_match_paper(self):
        topology = ec2_five_sites()
        mumbai = topology.index_of("mumbai")
        assert topology.rtt(mumbai, topology.index_of("virginia")) == pytest.approx(186.0)
        assert topology.rtt(mumbai, topology.index_of("ohio")) == pytest.approx(301.0)
        assert topology.rtt(mumbai, topology.index_of("frankfurt")) == pytest.approx(112.0)
        assert topology.rtt(mumbai, topology.index_of("ireland")) == pytest.approx(122.0)

    def test_eu_us_rtts_below_100ms(self):
        topology = ec2_five_sites()
        eu_us = [s for s in EC2_SITES if s != "mumbai"]
        for a in eu_us:
            for b in eu_us:
                if a != b:
                    assert topology.rtt_ms[(a, b)] < 100.0

    def test_symmetry(self):
        topology = ec2_five_sites()
        for i in range(5):
            for j in range(5):
                assert topology.rtt(i, j) == topology.rtt(j, i)

    def test_one_way_is_half_rtt(self):
        topology = ec2_five_sites()
        assert topology.one_way(0, 4) == pytest.approx(topology.rtt(0, 4) / 2)

    def test_self_delay_is_local(self):
        topology = ec2_five_sites(local_delivery_ms=0.1)
        assert topology.one_way(2, 2) == pytest.approx(0.1)

    def test_quorum_latency_counts_self(self):
        topology = ec2_five_sites()
        virginia = topology.index_of("virginia")
        # Classic quorum of 3 = self + two closest (Ohio 12ms, Ireland 76ms).
        assert topology.quorum_latency(virginia, 3) == pytest.approx(76.0)
        # Fast quorum of 4 adds Frankfurt at 90ms.
        assert topology.quorum_latency(virginia, 4) == pytest.approx(90.0)

    def test_quorum_latency_origin_is_distance_zero(self):
        # Regression: the origin's own vote needs no network round trip, so a
        # quorum of one costs exactly 0 ms — not the self-RTT
        # (2 x local_delivery_ms) the old code charged.
        topology = ec2_five_sites(local_delivery_ms=5.0)
        for origin in range(topology.size):
            assert topology.quorum_latency(origin, 1) == 0.0

    def test_describe_mentions_all_sites(self):
        text = ec2_five_sites().describe()
        for site in EC2_SITES:
            assert site in text


class TestSyntheticTopologies:
    def test_uniform_topology_rtts(self):
        topology = uniform_topology(4, rtt_ms=30.0)
        for i in range(4):
            for j in range(4):
                if i != j:
                    assert topology.rtt(i, j) == pytest.approx(30.0)

    def test_lan_topology_is_fast(self):
        topology = lan_topology(3)
        assert topology.rtt(0, 1) <= 1.0

    def test_custom_topology_square_matrix_required(self):
        with pytest.raises(ValueError):
            custom_topology(["a", "b"], [[0, 1, 2], [1, 0, 3]])

    def test_custom_topology_reads_upper_triangle(self):
        topology = custom_topology(["a", "b", "c"],
                                   [[0, 10, 20], [10, 0, 30], [20, 30, 0]])
        assert topology.rtt(0, 2) == pytest.approx(20.0)
        assert topology.rtt(2, 1) == pytest.approx(30.0)

    def test_index_of_unknown_site_raises(self):
        with pytest.raises(ValueError):
            uniform_topology(3).index_of("nowhere")

    def test_custom_topology_asymmetric_matrix_raises(self):
        # Regression: the lower triangle used to be silently dropped, so an
        # asymmetric matrix was accepted and half the data ignored.
        with pytest.raises(ValueError, match="symmetric"):
            custom_topology(["a", "b"], [[0, 10], [99, 0]])

    def test_custom_topology_nonzero_diagonal_raises(self):
        with pytest.raises(ValueError, match="diagonal"):
            custom_topology(["a", "b"], [[5, 10], [10, 0]])


class TestTopologyConstruction:
    def test_post_init_does_not_mutate_caller_dict(self):
        # Regression: mirrored (b, a) keys and self-RTT defaults used to be
        # written into the dict the caller passed in.
        rtt = {("a", "b"): 10.0}
        topology = Topology(sites=["a", "b"], rtt_ms=rtt, local_delivery_ms=0.05)
        assert rtt == {("a", "b"): 10.0}
        assert topology.rtt_ms[("b", "a")] == 10.0
        assert topology.rtt_ms[("a", "a")] == pytest.approx(0.1)

    def test_conflicting_mirror_entries_raise(self):
        with pytest.raises(ValueError, match="asymmetric"):
            Topology(sites=["a", "b"], rtt_ms={("a", "b"): 10.0, ("b", "a"): 20.0})

    def test_indices_of_lists_every_replica(self):
        topology = Topology(sites=["a", "b", "a"], rtt_ms={("a", "b"): 10.0})
        assert topology.indices_of("a") == [0, 2]
        assert topology.indices_of("b") == [1]
        assert topology.indices_of("nowhere") == []

    def test_index_of_multi_replica_site_raises(self):
        # Regression: index_of used to silently return the first replica.
        topology = Topology(sites=["a", "b", "a"], rtt_ms={("a", "b"): 10.0})
        with pytest.raises(ValueError, match="indices_of"):
            topology.index_of("a")
        assert topology.index_of("b") == 1


class TestWanTopology:
    def test_site_and_node_counts(self):
        topology = wan_topology(sites=20)
        assert topology.size == 20
        assert len(topology.site_names) == 20

    def test_symmetric_and_positive(self):
        topology = wan_topology(sites=12, regions=4, seed=3)
        for i in range(topology.size):
            for j in range(topology.size):
                assert topology.rtt(i, j) == topology.rtt(j, i)
                if i != j:
                    assert topology.rtt(i, j) >= 1.0

    def test_same_region_cheaper_than_cross_region(self):
        topology = wan_topology(sites=10, regions=5, intra_region_rtt_ms=4.0,
                                inter_region_base_ms=60.0, jitter_ms=2.0)
        # Sites 0 and 5 share region 0; sites 0 and 1 are one hop apart.
        assert topology.rtt(0, 5) < topology.rtt(0, 1)

    def test_deterministic_across_calls(self):
        first = wan_topology(sites=15, regions=4, seed=9)
        second = wan_topology(sites=15, regions=4, seed=9)
        assert first.sites == second.sites
        assert first.rtt_ms == second.rtt_ms

    def test_replicas_per_site_expands_round_robin(self):
        topology = wan_topology(sites=4, regions=2, replicas_per_site=3)
        assert topology.size == 12
        base = topology.site_names
        assert topology.sites == base * 3
        # Replicas of one site talk at the local self-RTT.
        first_site = topology.sites[0]
        a, b = topology.indices_of(first_site)[:2]
        assert topology.rtt(a, b) == pytest.approx(topology.local_delivery_ms * 2)

    def test_with_replicas_per_site_rejects_double_expansion(self):
        expanded = with_replicas_per_site(uniform_topology(3), 2)
        with pytest.raises(ValueError):
            with_replicas_per_site(expanded, 2)

    def test_with_replicas_per_site_identity(self):
        topology = uniform_topology(3)
        assert with_replicas_per_site(topology, 1) is topology
