"""Unit tests for latency topologies."""

from __future__ import annotations

import pytest

from repro.sim.topology import (
    EC2_SITES,
    custom_topology,
    ec2_five_sites,
    lan_topology,
    uniform_topology,
)


class TestEc2Topology:
    def test_five_sites_in_paper_order(self):
        topology = ec2_five_sites()
        assert topology.sites == ["virginia", "ohio", "frankfurt", "ireland", "mumbai"]
        assert topology.size == 5

    def test_mumbai_rtts_match_paper(self):
        topology = ec2_five_sites()
        mumbai = topology.index_of("mumbai")
        assert topology.rtt(mumbai, topology.index_of("virginia")) == pytest.approx(186.0)
        assert topology.rtt(mumbai, topology.index_of("ohio")) == pytest.approx(301.0)
        assert topology.rtt(mumbai, topology.index_of("frankfurt")) == pytest.approx(112.0)
        assert topology.rtt(mumbai, topology.index_of("ireland")) == pytest.approx(122.0)

    def test_eu_us_rtts_below_100ms(self):
        topology = ec2_five_sites()
        eu_us = [s for s in EC2_SITES if s != "mumbai"]
        for a in eu_us:
            for b in eu_us:
                if a != b:
                    assert topology.rtt_ms[(a, b)] < 100.0

    def test_symmetry(self):
        topology = ec2_five_sites()
        for i in range(5):
            for j in range(5):
                assert topology.rtt(i, j) == topology.rtt(j, i)

    def test_one_way_is_half_rtt(self):
        topology = ec2_five_sites()
        assert topology.one_way(0, 4) == pytest.approx(topology.rtt(0, 4) / 2)

    def test_self_delay_is_local(self):
        topology = ec2_five_sites(local_delivery_ms=0.1)
        assert topology.one_way(2, 2) == pytest.approx(0.1)

    def test_quorum_latency_counts_self(self):
        topology = ec2_five_sites()
        virginia = topology.index_of("virginia")
        # Classic quorum of 3 = self + two closest (Ohio 12ms, Ireland 76ms).
        assert topology.quorum_latency(virginia, 3) == pytest.approx(76.0)
        # Fast quorum of 4 adds Frankfurt at 90ms.
        assert topology.quorum_latency(virginia, 4) == pytest.approx(90.0)

    def test_describe_mentions_all_sites(self):
        text = ec2_five_sites().describe()
        for site in EC2_SITES:
            assert site in text


class TestSyntheticTopologies:
    def test_uniform_topology_rtts(self):
        topology = uniform_topology(4, rtt_ms=30.0)
        for i in range(4):
            for j in range(4):
                if i != j:
                    assert topology.rtt(i, j) == pytest.approx(30.0)

    def test_lan_topology_is_fast(self):
        topology = lan_topology(3)
        assert topology.rtt(0, 1) <= 1.0

    def test_custom_topology_square_matrix_required(self):
        with pytest.raises(ValueError):
            custom_topology(["a", "b"], [[0, 1, 2], [1, 0, 3]])

    def test_custom_topology_reads_upper_triangle(self):
        topology = custom_topology(["a", "b", "c"],
                                   [[0, 10, 20], [10, 0, 30], [20, 30, 0]])
        assert topology.rtt(0, 2) == pytest.approx(20.0)
        assert topology.rtt(2, 1) == pytest.approx(30.0)

    def test_index_of_unknown_site_raises(self):
        with pytest.raises(ValueError):
            uniform_topology(3).index_of("nowhere")
