"""Unit tests for crash injection and the failure detector."""

from __future__ import annotations

from repro.sim.failures import CrashInjector, FailureDetector, Heartbeat, ScheduledCrash
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.simulator import Simulator
from repro.sim.topology import uniform_topology


class DetectorNode(Node):
    """Node that wires incoming heartbeats into its failure detector."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.detector = None
        self.suspected = []
        #: every received heartbeat as ``(sender, arrival time)``.
        self.heartbeats_seen = []

    def attach_detector(self, peer_ids, heartbeat_every_ms=20.0, suspect_after_ms=100.0):
        self.detector = FailureDetector(owner=self, peer_ids=peer_ids,
                                        heartbeat_every_ms=heartbeat_every_ms,
                                        suspect_after_ms=suspect_after_ms,
                                        on_suspect=self.suspected.append)
        self.detector.start()

    def handle_message(self, src: int, message: object) -> None:
        if isinstance(message, Heartbeat):
            self.heartbeats_seen.append((message.sender, self.sim.now))
            if self.detector is not None:
                self.detector.observe_heartbeat(message)


def build_detector_cluster(n: int = 3):
    sim = Simulator(seed=1)
    network = Network(sim, uniform_topology(n, rtt_ms=10.0))
    nodes = [DetectorNode(i, sim, network) for i in range(n)]
    for node in nodes:
        node.attach_detector(list(range(n)))
    return sim, nodes


class TestCrashInjector:
    def test_scheduled_crash_happens_at_time(self):
        sim = Simulator()
        network = Network(sim, uniform_topology(2, rtt_ms=5.0))
        nodes = {i: DetectorNode(i, sim, network) for i in range(2)}
        injector = CrashInjector(sim, nodes)
        injector.schedule(ScheduledCrash(node_id=1, crash_at_ms=50.0))
        sim.run(until=40.0)
        assert not nodes[1].crashed
        sim.run(until=60.0)
        assert nodes[1].crashed
        assert injector.crashes_performed == [1]

    def test_scheduled_restart(self):
        sim = Simulator()
        network = Network(sim, uniform_topology(1, rtt_ms=5.0))
        nodes = {0: DetectorNode(0, sim, network)}
        injector = CrashInjector(sim, nodes)
        injector.schedule(ScheduledCrash(node_id=0, crash_at_ms=10.0, restart_at_ms=30.0))
        sim.run(until=20.0)
        assert nodes[0].crashed
        sim.run(until=40.0)
        assert not nodes[0].crashed
        assert injector.restarts_performed == [0]

    def test_crash_now(self):
        sim = Simulator()
        network = Network(sim, uniform_topology(1, rtt_ms=5.0))
        nodes = {0: DetectorNode(0, sim, network)}
        injector = CrashInjector(sim, nodes)
        injector.crash_now(0)
        assert nodes[0].crashed

    def test_double_crash_recorded_once(self):
        sim = Simulator()
        network = Network(sim, uniform_topology(1, rtt_ms=5.0))
        nodes = {0: DetectorNode(0, sim, network)}
        injector = CrashInjector(sim, nodes)
        injector.crash_now(0)
        injector.crash_now(0)
        assert injector.crashes_performed == [0]


class TestFailureDetector:
    def test_no_suspicion_while_heartbeats_flow(self):
        sim, nodes = build_detector_cluster()
        sim.run(until=500.0)
        assert all(node.suspected == [] for node in nodes)

    def test_crashed_peer_eventually_suspected(self):
        sim, nodes = build_detector_cluster()
        sim.run(until=100.0)
        nodes[2].crash()
        sim.run(until=500.0)
        assert 2 in nodes[0].suspected
        assert 2 in nodes[1].suspected

    def test_live_peers_not_suspected_after_crash_of_other(self):
        sim, nodes = build_detector_cluster()
        nodes[2].crash()
        sim.run(until=500.0)
        assert 1 not in nodes[0].suspected
        assert 0 not in nodes[1].suspected

    def test_suspicion_cleared_when_heartbeat_resumes(self):
        sim, nodes = build_detector_cluster()
        sim.run(until=100.0)
        nodes[2].crash()
        sim.run(until=400.0)
        assert nodes[0].detector.is_suspected(2)
        nodes[2].restart()
        # The restarted node's timers were suppressed; restart its detector loop.
        nodes[2].detector.start()
        sim.run(until=800.0)
        assert not nodes[0].detector.is_suspected(2)

    def test_observe_any_message_counts_as_liveness(self):
        sim, nodes = build_detector_cluster()
        detector = nodes[0].detector
        sim.run(until=50.0)
        detector.observe_any_message(1)
        assert not detector.is_suspected(1)

    def test_stop_prevents_further_suspicions(self):
        sim, nodes = build_detector_cluster()
        nodes[0].detector.stop()
        nodes[2].crash()
        sim.run(until=500.0)
        assert nodes[0].suspected == []

    def test_suspect_callback_fired_once_per_peer(self):
        sim, nodes = build_detector_cluster()
        sim.run(until=100.0)
        nodes[2].crash()
        sim.run(until=1000.0)
        assert nodes[0].suspected.count(2) == 1


class TestFailureDetectorTiming:
    """Suspicion must fire after — and only after — ``suspect_after_ms`` of silence."""

    def test_no_suspicion_before_silence_threshold(self):
        # Heartbeats every 20ms, suspicion after 100ms of silence; the last
        # heartbeat from node 2 lands around t=105 (sent at 100, 5ms one-way).
        sim, nodes = build_detector_cluster()
        sim.run(until=100.0)
        nodes[2].crash()
        sim.run(until=195.0)
        assert not nodes[0].detector.is_suspected(2)

    def test_suspicion_fires_after_silence_threshold(self):
        sim, nodes = build_detector_cluster()
        sim.run(until=100.0)
        nodes[2].crash()
        sim.run(until=260.0)
        assert nodes[0].detector.is_suspected(2)
        assert nodes[1].detector.is_suspected(2)

    def test_heartbeat_resume_unsuspects(self):
        detector_owner = build_detector_cluster()[1][0]
        detector = detector_owner.detector
        detector.suspected.add(2)
        detector.observe_heartbeat(Heartbeat(sender=2, sequence=99))
        assert not detector.is_suspected(2)

    def test_crashed_node_emits_no_heartbeats(self):
        sim, nodes = build_detector_cluster()
        sim.run(until=100.0)
        nodes[2].crash()
        # Allow anything already in flight at the crash instant to land.
        sim.run(until=120.0)
        seen_before = sum(1 for sender, _ in nodes[0].heartbeats_seen if sender == 2)
        sim.run(until=1000.0)
        seen_after = sum(1 for sender, _ in nodes[0].heartbeats_seen if sender == 2)
        assert seen_before > 0
        assert seen_after == seen_before
        # Live peers kept emitting throughout.
        assert any(when > 900.0 for sender, when in nodes[0].heartbeats_seen
                   if sender == 1)

    def test_restarted_detector_recovers_full_cycle(self):
        """Crash -> suspicion -> restart -> heartbeats resume -> unsuspected."""
        sim, nodes = build_detector_cluster()
        sim.run(until=100.0)
        nodes[2].crash()
        sim.run(until=400.0)
        assert nodes[0].detector.is_suspected(2)
        nodes[2].restart()
        nodes[2].detector.start()
        sim.run(until=800.0)
        assert not nodes[0].detector.is_suspected(2)
        assert not nodes[1].detector.is_suspected(2)
