"""Tests for the experiment harness: cluster builder, experiment runner, reporting."""

from __future__ import annotations

import pytest

from repro.harness.cluster import PROTOCOLS, ClusterConfig, build_cluster
from repro.harness.experiment import (
    ExperimentConfig,
    attach_clients,
    build_experiment_cluster,
    run_experiment,
)
from repro.harness.report import format_series, format_table
from repro.metrics.collector import MetricsCollector
from repro.sim.topology import lan_topology, uniform_topology
from repro.workload.generator import WorkloadConfig


class TestClusterBuilder:
    def test_default_cluster_is_five_site_caesar(self):
        cluster = build_cluster()
        assert cluster.size == 5
        assert cluster.replicas[0].protocol_name == "caesar"
        assert cluster.topology.sites[0] == "virginia"

    def test_all_registered_protocols_buildable(self):
        for protocol in ["caesar", "epaxos", "multipaxos", "mencius", "m2paxos"]:
            cluster = build_cluster(ClusterConfig(protocol=protocol))
            assert cluster.size == 5
            assert cluster.replicas[0].protocol_name == protocol

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            build_cluster(ClusterConfig(protocol="raft"))

    def test_registry_contains_all_five(self):
        build_cluster()  # force baseline registration
        assert set(PROTOCOLS) >= {"caesar", "epaxos", "multipaxos", "mencius", "m2paxos"}

    def test_custom_topology_size(self):
        cluster = build_cluster(ClusterConfig(topology=uniform_topology(7, rtt_ms=30.0)))
        assert cluster.size == 7

    def test_replica_at_site_lookup(self):
        cluster = build_cluster()
        assert cluster.replica_at("mumbai").node_id == 4

    def test_protocol_options_forwarded(self):
        cluster = build_cluster(ClusterConfig(protocol="multipaxos",
                                              protocol_options={"leader_id": 2}))
        assert cluster.replicas[0].leader_id == 2

    def test_check_consistency_empty_on_fresh_cluster(self):
        cluster = build_cluster()
        assert cluster.check_consistency() == []
        assert cluster.total_executed() == 0


class TestExperimentRunner:
    def run_small(self, protocol: str = "caesar", **overrides) -> object:
        config = ExperimentConfig(protocol=protocol, conflict_rate=0.1, clients_per_site=2,
                                  duration_ms=1500.0, warmup_ms=300.0, drain_ms=500.0,
                                  seed=5, **overrides)
        return run_experiment(config)

    def test_experiment_produces_samples_and_no_violations(self):
        result = self.run_small()
        assert result.metrics.count > 0
        assert result.consistency_violations == 0
        assert result.overall_latency is not None
        assert result.throughput_per_second > 0

    def test_per_site_latency_covers_all_sites(self):
        result = self.run_small()
        assert len(result.per_site_latency) == 5

    def test_slow_path_ratio_in_unit_interval(self):
        result = self.run_small()
        ratio = result.slow_path_ratio
        assert ratio is None or 0.0 <= ratio <= 1.0

    def test_open_loop_mode(self):
        result = self.run_small(open_loop=True, arrival_rate_per_client=40.0)
        assert result.metrics.count > 0

    def test_custom_workload_forwarded(self):
        result = self.run_small(workload=WorkloadConfig(conflict_rate=1.0, shared_pool_size=5))
        keys = {sample.key for sample in result.metrics.samples}
        assert all(key.startswith("shared-") for key in keys)

    def test_every_protocol_completes_an_experiment(self):
        for protocol in ["caesar", "epaxos", "multipaxos", "mencius", "m2paxos"]:
            result = self.run_small(protocol=protocol)
            assert result.metrics.count > 0, protocol
            assert result.consistency_violations == 0, protocol

    def test_attach_clients_counts(self):
        config = ExperimentConfig(clients_per_site=3, topology=lan_topology(3))
        cluster = build_experiment_cluster(config)
        metrics = MetricsCollector()
        pool = attach_clients(cluster, config, metrics)
        assert len(pool.clients) == 9

    def test_recovery_flag_propagates_to_caesar(self):
        config = ExperimentConfig(protocol="caesar", recovery=True, topology=lan_topology(5))
        cluster = build_experiment_cluster(config)
        assert cluster.replicas[0].config.recovery_enabled
        config_off = ExperimentConfig(protocol="caesar", recovery=False,
                                      topology=lan_topology(5))
        cluster_off = build_experiment_cluster(config_off)
        assert not cluster_off.replicas[0].config.recovery_enabled


class TestReporting:
    def test_format_table_alignment_and_none(self):
        table = format_table("Title", ["a", "bee"], [[1, None], [2.5, "x"]])
        lines = table.splitlines()
        assert lines[0] == "Title"
        assert "a" in lines[1] and "bee" in lines[1]
        assert "-" in lines[2]
        assert "2.5" in table and "x" in table

    def test_format_series_merges_x_values(self):
        series = {"caesar": {"0%": 1.0, "10%": 2.0}, "epaxos": {"10%": 3.0, "30%": 4.0}}
        table = format_series("S", series, x_label="conflict")
        assert "conflict" in table
        for x in ("0%", "10%", "30%"):
            assert x in table
        # Missing cells render as '-'.
        assert "-" in table
