"""Tests for cluster-level history garbage collection (HistoryCompactor).

The compactor removes a command's history entry at every replica once the
command has been delivered by *all* replicas — at that point it can never
influence another decision.  These tests cover the unit-level contract
(removal, deferral while parked, cursor incrementality) and the harness
plumbing (``ClusterConfig.history_gc_ms`` / ``--history-gc``).
"""

from __future__ import annotations

from repro.consensus.ballots import Ballot
from repro.consensus.timestamps import LogicalTimestamp
from repro.core.delivery import DeliveryManager, HistoryCompactor
from repro.core.history import CommandHistory, CommandStatus
from repro.core.predecessors import WaitManager
from repro.harness.cluster import ClusterConfig, build_cluster
from tests.conftest import make_command

BALLOT = Ballot.initial(0)


def ts(counter: int, node: int = 0) -> LogicalTimestamp:
    return LogicalTimestamp(counter, node)


class FakeReplica:
    """Just enough replica surface for the compactor: history + delivery."""

    def __init__(self) -> None:
        self.history = CommandHistory()
        self.delivery = DeliveryManager(self.history, lambda c: None)
        self.wait_manager = WaitManager(self.history, lambda: 0.0)

    def stable(self, command, timestamp, predecessors=()):
        self.history.update(command, timestamp, set(predecessors),
                            CommandStatus.STABLE, BALLOT)
        self.delivery.on_stable(command)


def make_timers():
    """A ``set_timer`` stub recording (delay, callback) pairs."""
    scheduled = []
    return scheduled, lambda delay, callback: scheduled.append((delay, callback))


class TestCompactorUnit:
    def test_removes_entries_delivered_everywhere(self):
        replicas = [FakeReplica(), FakeReplica()]
        command = make_command(0, 0, key="x")
        for replica in replicas:
            replica.stable(command, ts(1))
        _, set_timer = make_timers()
        compactor = HistoryCompactor(replicas, set_timer, interval_ms=100.0)
        assert compactor.collect() == 1
        assert all(replica.history.get(command.command_id) is None
                   for replica in replicas)
        assert compactor.commands_removed == 1

    def test_keeps_entries_not_delivered_everywhere(self):
        replicas = [FakeReplica(), FakeReplica()]
        command = make_command(0, 0, key="x")
        replicas[0].stable(command, ts(1))  # second replica never delivers
        _, set_timer = make_timers()
        compactor = HistoryCompactor(replicas, set_timer, interval_ms=100.0)
        assert compactor.collect() == 0
        assert replicas[0].history.get(command.command_id) is not None

    def test_collection_is_cursor_incremental(self):
        replicas = [FakeReplica()]
        _, set_timer = make_timers()
        compactor = HistoryCompactor(replicas, set_timer, interval_ms=100.0)
        first = make_command(0, 0, key="x")
        replicas[0].stable(first, ts(1))
        assert compactor.collect() == 1
        # A second pass with no new deliveries removes nothing (the cursor
        # advanced past the already-collected prefix).
        assert compactor.collect() == 0
        second = make_command(0, 1, key="x")
        replicas[0].stable(second, ts(2))
        assert compactor.collect() == 1

    def test_removal_deferred_while_parked_on_key(self):
        replica = FakeReplica()
        command = make_command(0, 0, key="hot")
        replica.stable(command, ts(1))
        # Park a later proposal on the same key: its incremental wait state
        # references bucket entries, so collection must hold off.
        blocker = make_command(1, 0, key="hot")
        replica.history.update(blocker, ts(5), set(), CommandStatus.FAST_PENDING, BALLOT)
        outcomes = []
        replica.wait_manager.evaluate(make_command(2, 0, key="hot"), ts(3),
                                      lambda ok, waited: outcomes.append(ok))
        assert replica.wait_manager.has_parked("hot")
        _, set_timer = make_timers()
        compactor = HistoryCompactor([replica], set_timer, interval_ms=100.0)
        assert compactor.collect() == 0
        assert replica.history.get(command.command_id) is not None
        # Unpark (the blocker finalizes) and the deferred command collects.
        entry = replica.history.update(blocker, ts(5), {command.command_id},
                                       CommandStatus.STABLE, BALLOT)
        replica.wait_manager.notify_entry(entry)
        assert outcomes  # proposal resolved, key no longer parked
        assert compactor.collect() == 1
        assert replica.history.get(command.command_id) is None

    def test_start_arms_periodic_timer(self):
        scheduled, set_timer = make_timers()
        compactor = HistoryCompactor([FakeReplica()], set_timer, interval_ms=250.0)
        compactor.start()
        assert [delay for delay, _ in scheduled] == [250.0]
        scheduled[0][1]()  # fire the tick: collects and re-arms
        assert [delay for delay, _ in scheduled] == [250.0, 250.0]


class TestClusterPlumbing:
    def _drive(self, history_gc_ms):
        config = ClusterConfig(protocol="caesar", seed=11,
                               history_gc_ms=history_gc_ms)
        cluster = build_cluster(config)
        # A conflict-heavy stream: three hot keys shared across all replicas.
        commands = [make_command(i % cluster.size, i // cluster.size,
                                 key=f"hot-{i % 3}", origin=i % cluster.size)
                    for i in range(30)]
        for command in commands:
            cluster.replica(command.origin).submit(command)
        cluster.run_until_executed([c.command_id for c in commands],
                                   deadline_ms=30000)
        return cluster, commands

    def test_build_cluster_without_gc_has_no_compactor(self):
        cluster, _ = self._drive(history_gc_ms=None)
        assert cluster.compactor is None
        assert all(len(r.history) > 0 for r in cluster.replicas)

    def test_gc_collects_delivered_commands_and_preserves_outcomes(self):
        plain, commands = self._drive(history_gc_ms=None)
        collected, _ = self._drive(history_gc_ms=100.0)
        assert collected.compactor is not None
        assert collected.compactor.commands_removed > 0
        # Every command still executed on every replica, in an order
        # consistent with the non-collected run (same conflict ordering).
        for replica in collected.replicas:
            for command in commands:
                assert replica.has_executed(command.command_id)
        assert collected.check_consistency() == []
        # Histories actually shrank relative to the uncollected run.
        assert (sum(len(r.history) for r in collected.replicas)
                < sum(len(r.history) for r in plain.replicas))

    def test_experiment_config_plumbs_history_gc(self):
        from repro.harness.experiment import ExperimentConfig, run_experiment

        result = run_experiment(ExperimentConfig(
            protocol="caesar", conflict_rate=0.3, clients_per_site=2,
            duration_ms=1500.0, warmup_ms=500.0, history_gc_ms=200.0))
        assert result.cluster.compactor is not None
        assert result.cluster.compactor.commands_removed > 0
        assert result.consistency_violations == 0
