"""Integration tests for the Multi-Paxos baseline."""

from __future__ import annotations

from repro.baselines.multipaxos import MultiPaxosReplica
from repro.consensus.quorums import QuorumSystem
from repro.kvstore.store import KeyValueStore
from repro.sim.network import Network
from repro.sim.simulator import Simulator
from repro.sim.topology import ec2_five_sites, uniform_topology
from tests.conftest import make_command


def build_multipaxos_cluster(n: int = 5, leader_id: int = 0, seed: int = 1,
                             recovery: bool = False):
    topology = ec2_five_sites() if n == 5 else uniform_topology(n, rtt_ms=40.0)
    sim = Simulator(seed=seed)
    network = Network(sim, topology)
    quorums = QuorumSystem.for_cluster(n)
    replicas = [MultiPaxosReplica(i, sim, network, quorums, KeyValueStore(),
                                  leader_id=leader_id, recovery_enabled=recovery)
                for i in range(n)]
    if recovery:
        for replica in replicas:
            replica.start()
    return sim, network, replicas


def submit_and_run(sim, replicas, commands, deadline_ms=60000):
    for origin, command in commands:
        replicas[origin].submit(command)
    ids = [c.command_id for _, c in commands]
    return sim.run_until(
        lambda: all(r.has_executed(cid) for r in replicas if not r.crashed for cid in ids),
        deadline=deadline_ms)


class TestOrdering:
    def test_leader_orders_local_command(self):
        sim, _, replicas = build_multipaxos_cluster()
        command = make_command(0, 0, key="a", origin=0)
        assert submit_and_run(sim, replicas, [(0, command)])
        assert replicas[0].stats.slots_proposed == 1
        assert replicas[0].stats.slots_committed == 1

    def test_non_leader_forwards_to_leader(self):
        sim, _, replicas = build_multipaxos_cluster(leader_id=3)
        command = make_command(2, 0, key="a", origin=2)
        assert submit_and_run(sim, replicas, [(2, command)])
        assert replicas[2].stats.commands_forwarded == 1
        assert replicas[3].stats.slots_proposed == 1

    def test_total_order_identical_on_all_replicas(self):
        sim, _, replicas = build_multipaxos_cluster()
        commands = [(i, make_command(i, k, key=f"k{k}", origin=i))
                    for i in range(5) for k in range(4)]
        assert submit_and_run(sim, replicas, commands)
        reference = [c.command_id for c in replicas[0].execution_log]
        for replica in replicas[1:]:
            assert [c.command_id for c in replica.execution_log] == reference

    def test_latency_depends_on_leader_distance(self):
        """Clients far from the leader pay the forwarding hop (Figure 7 effect)."""
        topology = ec2_five_sites()
        ireland = topology.index_of("ireland")
        mumbai = topology.index_of("mumbai")

        def leader_latency(leader_id: int, origin: int) -> float:
            sim, _, replicas = build_multipaxos_cluster(leader_id=leader_id)
            command = make_command(origin, 0, key="a", origin=origin)
            assert submit_and_run(sim, replicas, [(origin, command)])
            return replicas[origin].decisions[command.command_id].latency_ms

        near = leader_latency(ireland, topology.index_of("virginia"))
        far = leader_latency(mumbai, topology.index_of("virginia"))
        assert far > near

    def test_conflict_rate_does_not_matter(self):
        """Multi-Paxos orders everything; same-key and different-key commands behave alike."""
        sim, _, replicas = build_multipaxos_cluster()
        same_key = [(i, make_command(i, 0, key="hot", origin=i)) for i in range(5)]
        assert submit_and_run(sim, replicas, same_key)
        assert all(r.commands_executed == 5 for r in replicas)

    def test_state_machines_converge(self):
        sim, _, replicas = build_multipaxos_cluster()
        commands = [(i, make_command(i, k, key=f"hot-{k % 2}", origin=i))
                    for i in range(5) for k in range(3)]
        assert submit_and_run(sim, replicas, commands)
        snapshots = [r.state_machine.snapshot() for r in replicas]
        assert all(s == snapshots[0] for s in snapshots)


class TestLeaderFailover:
    def test_new_leader_elected_after_crash(self):
        sim, _, replicas = build_multipaxos_cluster(recovery=True, leader_id=0, seed=2)
        first = make_command(1, 0, key="a", origin=1)
        replicas[1].submit(first)
        assert sim.run_until(lambda: replicas[1].has_executed(first.command_id),
                             deadline=30000)
        replicas[0].crash()
        # Wait for the failure detector and election to settle.
        sim.run(until=sim.now + 3000.0)
        live = [r for r in replicas if not r.crashed]
        assert any(r.is_leader for r in live)
        second = make_command(2, 0, key="b", origin=2)
        replicas[2].submit(second)
        assert sim.run_until(
            lambda: all(r.has_executed(second.command_id) for r in live), deadline=30000)

    def test_follower_crash_does_not_stop_progress(self):
        sim, _, replicas = build_multipaxos_cluster(recovery=True, leader_id=0, seed=3)
        replicas[4].crash()
        command = make_command(1, 0, key="a", origin=1)
        replicas[1].submit(command)
        assert sim.run_until(
            lambda: all(r.has_executed(command.command_id)
                        for r in replicas if not r.crashed),
            deadline=30000)
