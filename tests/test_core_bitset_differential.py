"""Differential test: optimized decision path vs the naive reference.

Hypothesis generates random command streams (proposals, retries/status
changes, garbage collection) and drives the optimized stack
(:class:`~repro.core.history.CommandHistory` + bitset
``compute_predecessor_mask`` + incremental
:class:`~repro.core.predecessors.WaitManager`) and the naive reference stack
(:mod:`repro.core.reference`) through the *same* sequence, the way a CAESAR
acceptor would: compute predecessors, UPDATE, notify the wait condition,
evaluate proposals.  At every step both stacks must agree on

* the computed predecessor set of every proposal,
* every WAIT outcome (park vs immediate, OK vs NACK, resolution order),
* the parked bookkeeping (count, per-key flags), and
* GC behaviour (removal, and predecessor sets afterwards).

This equivalence is what makes the interned-bitset representation
trustworthy: the reference is the executable specification.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.consensus.ballots import Ballot
from repro.consensus.command import Command
from repro.consensus.timestamps import LogicalTimestamp
from repro.core.history import CommandHistory, CommandStatus
from repro.core.predecessors import WaitManager, compute_predecessors
from repro.core.reference import (ReferenceCommandHistory, ReferenceWaitManager,
                                  reference_compute_predecessors)

BALLOT = Ballot.initial(0)

KEYS = ("alpha", "beta")

#: Statuses a later step may move an existing command to (a retry raises the
#: timestamp and re-computes predecessors, mirroring the protocol).
BUMP_STATUSES = (CommandStatus.SLOW_PENDING, CommandStatus.ACCEPTED,
                 CommandStatus.REJECTED, CommandStatus.STABLE)

#: One step: (kind, command slot 0-11, timestamp counter 1-30, selector).
#: kind 0 = propose (UPDATE + WAIT), 1 = status bump / retry, 2 = remove.
steps_strategy = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 11), st.integers(1, 30),
              st.integers(0, 3)),
    min_size=1, max_size=40)


class DualStack:
    """The optimized and reference stacks driven in lock step."""

    def __init__(self) -> None:
        self.optimized = CommandHistory()
        self.reference = ReferenceCommandHistory()
        self.opt_outcomes = []
        self.ref_outcomes = []
        self.clock = 0.0
        self.opt_wait = WaitManager(self.optimized, lambda: self.clock)
        self.ref_wait = ReferenceWaitManager(self.reference, lambda: self.clock)
        self.commands = {}

    def command_for(self, slot: int) -> Command:
        command = self.commands.get(slot)
        if command is None:
            # Slot determines identity, key and read/write flavour, so
            # repeated steps on one slot model retries of one command.
            command = Command(command_id=(slot, 0), key=KEYS[slot % len(KEYS)],
                              operation="get" if slot % 4 == 3 else "put",
                              value=f"v{slot}", origin=0)
            self.commands[slot] = command
        return command

    def compute_both(self, command: Command, timestamp: LogicalTimestamp):
        opt = compute_predecessors(self.optimized, command, timestamp, None)
        ref = reference_compute_predecessors(self.reference, command, timestamp, None)
        assert opt == ref, (command, timestamp, opt, ref)
        return opt

    def update_both(self, command, timestamp, predecessors, status):
        entry = self.optimized.update(command, timestamp, predecessors, status, BALLOT)
        self.reference.update(command, timestamp, predecessors, status, BALLOT)
        self.opt_wait.notify_entry(entry)
        self.ref_wait.notify_change(command.key)

    def check_agreement(self) -> None:
        assert self.opt_outcomes == self.ref_outcomes
        assert self.opt_wait.parked_count() == self.ref_wait.parked_count()
        for key in KEYS:
            assert self.opt_wait.has_parked(key) == self.ref_wait.has_parked(key)
        assert len(self.optimized) == len(self.reference)
        for slot, command in self.commands.items():
            opt_entry = self.optimized.get(command.command_id)
            ref_entry = self.reference.get(command.command_id)
            assert (opt_entry is None) == (ref_entry is None)
            if opt_entry is not None:
                assert set(opt_entry.predecessors) == set(ref_entry.predecessors)
                assert opt_entry.timestamp == ref_entry.timestamp
                assert opt_entry.status is ref_entry.status
            assert (self.optimized.predecessors_of(command.command_id)
                    == frozenset(self.reference.predecessors_of(command.command_id)))


def drive(steps) -> DualStack:
    stack = DualStack()
    for kind, slot, counter, selector in steps:
        command = stack.command_for(slot)
        # Unique total order: the slot doubles as the timestamp's node id.
        timestamp = LogicalTimestamp(counter, slot)
        if kind == 0:
            # Propose: UPDATE with computed predecessors, then WAIT — the
            # acceptor's fast-propose path.
            predecessors = stack.compute_both(command, timestamp)
            stack.update_both(command, timestamp, predecessors,
                              CommandStatus.FAST_PENDING)
            stack.opt_wait.evaluate(
                command, timestamp,
                lambda ok, waited, c=command: stack.opt_outcomes.append(
                    (c.command_id, ok, waited)))
            stack.ref_wait.evaluate(
                command, timestamp,
                lambda ok, waited, c=command: stack.ref_outcomes.append(
                    (c.command_id, ok, waited)))
        elif kind == 1:
            # Status bump / retry of a command both histories already hold.
            if stack.optimized.get(command.command_id) is None:
                continue
            status = BUMP_STATUSES[selector % len(BUMP_STATUSES)]
            predecessors = stack.compute_both(command, timestamp)
            stack.opt_wait.drop_command(command.command_id, command.key)
            stack.ref_wait.drop_command(command.command_id, command.key)
            stack.update_both(command, timestamp, predecessors, status)
        else:
            # GC: remove only when present and the key has nothing parked,
            # the same deferral rule HistoryCompactor applies.
            if stack.optimized.get(command.command_id) is None:
                continue
            if stack.opt_wait.has_parked(command.key):
                continue
            stack.optimized.remove(command.command_id)
            stack.reference.remove(command.command_id)
        stack.clock += 1.0
        stack.check_agreement()
    return stack


class TestBitsetDifferential:
    @settings(max_examples=200, deadline=None)
    @given(steps=steps_strategy)
    def test_random_streams_agree(self, steps):
        drive(steps)

    def test_park_then_resolve_sequence_agrees(self):
        # A deterministic stream that forces parking: a proposal behind two
        # pending conflicting writes, which then finalize one by one.  Each
        # finalize recomputes predecessors, so the stabilized blockers
        # whitelist the parked proposal and it resolves OK.
        steps = [
            (0, 0, 10, 0),   # write alpha @10
            (0, 2, 20, 0),   # write alpha @20
            (0, 4, 5, 0),    # write alpha @5 — parked behind both
            (1, 0, 10, 3),   # slot 0 -> STABLE, whitelists slot 4
            (1, 2, 20, 3),   # slot 2 -> STABLE, blocker mask empties -> OK
        ]
        stack = drive(steps)
        ok, waited = next((ok, waited) for cid, ok, waited in stack.opt_outcomes
                          if cid == (4, 0))
        assert ok is True and waited > 0  # parked, then released OK

    def test_late_proposal_behind_stable_suffix_nacks(self):
        # A conflicting command stabilized *before* the proposal existed does
        # not whitelist it, so the late small-timestamp proposal NACKs
        # immediately — on both stacks.
        steps = [
            (0, 0, 10, 0),   # write alpha @10
            (1, 0, 10, 3),   # slot 0 -> STABLE; predecessors exclude slot 4
            (0, 4, 5, 0),    # write alpha @5 arrives late
        ]
        stack = drive(steps)
        ok, waited = next((ok, waited) for cid, ok, waited in stack.opt_outcomes
                          if cid == (4, 0))
        assert ok is False and waited == 0  # immediate NACK

    def test_gc_after_delivery_agrees(self):
        steps = [
            (0, 0, 3, 0),
            (0, 2, 7, 0),
            (1, 0, 3, 3),    # slot 0 stable
            (2, 0, 0, 0),    # remove slot 0
            (0, 6, 9, 0),    # new proposal no longer sees the removed command
        ]
        stack = drive(steps)
        assert stack.optimized.get((0, 0)) is None
        entry = stack.optimized.get((6, 0))
        assert entry is not None
        assert (0, 0) not in entry.predecessors
