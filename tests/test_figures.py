"""Smoke tests for the per-figure experiment drivers (scaled-down parameters).

These do not assert the paper's numbers — that is the benchmark suite's job —
they assert that every driver runs end to end, produces well-formed series,
and exhibits the coarse qualitative property each figure is about.
"""

from __future__ import annotations

import pytest

from repro.harness import figures
from repro.sim.topology import EC2_SHORT_LABELS


SMALL = dict(duration_ms=2500.0, warmup_ms=500.0)


class TestFigure6:
    def test_driver_produces_series_for_each_protocol(self):
        result = figures.figure6_latency_vs_conflicts(
            conflict_rates=(0.0, 0.3), protocols=("caesar", "epaxos"), clients_per_site=3,
            **SMALL)
        assert set(result.series) == {"caesar", "epaxos"}
        assert set(result.series["caesar"]) == {"0%", "30%"}
        assert all(value is not None and value > 0
                   for values in result.series.values() for value in values.values())
        assert "Figure 6" in result.table

    def test_caesar_latency_roughly_flat_across_conflicts(self):
        result = figures.figure6_latency_vs_conflicts(
            conflict_rates=(0.0, 0.3), protocols=("caesar",), clients_per_site=3, **SMALL)
        latencies = result.series["caesar"]
        assert latencies["30%"] <= latencies["0%"] * 1.6


class TestFigure7:
    def test_four_systems_reported_per_site(self):
        result = figures.figure7_single_leader_comparison(clients_per_site=3, **SMALL)
        assert set(result.series) == {"multipaxos-IR", "multipaxos-IN", "mencius", "caesar-0%"}
        for values in result.series.values():
            assert set(values) == set(EC2_SHORT_LABELS.values())

    def test_far_leader_slower_than_near_leader_outside_mumbai(self):
        result = figures.figure7_single_leader_comparison(clients_per_site=3, **SMALL)
        assert result.series["multipaxos-IN"]["VA"] > result.series["multipaxos-IR"]["VA"]

    def test_caesar_beats_mencius_on_average(self):
        result = figures.figure7_single_leader_comparison(clients_per_site=3, **SMALL)
        caesar_mean = sum(result.series["caesar-0%"].values()) / 5
        mencius_mean = sum(result.series["mencius"].values()) / 5
        assert caesar_mean < mencius_mean


class TestFigure8:
    def test_latency_reported_per_client_count(self):
        result = figures.figure8_client_scaling(client_counts=(5, 50), protocols=("caesar",),
                                                duration_ms=2500.0, warmup_ms=500.0)
        assert set(result.series["caesar"]) == {5, 50}
        assert all(value > 0 for value in result.series["caesar"].values())


class TestFigure9:
    def test_throughput_series_and_multipaxos_bottleneck(self):
        result = figures.figure9_throughput(conflict_rates=(0.0,),
                                            protocols=("caesar", "multipaxos"),
                                            clients_per_site=30, duration_ms=2500.0,
                                            warmup_ms=500.0)
        assert result.series["caesar"]["0%"] > 0
        # The single leader saturates below the multi-leader protocol.
        assert result.series["multipaxos"]["0%"] < result.series["caesar"]["0%"]


class TestFigure10:
    def test_caesar_has_fewer_slow_paths_than_epaxos(self):
        result = figures.figure10_slow_paths(conflict_rates=(0.3,), clients_per_site=15,
                                             duration_ms=3000.0, warmup_ms=500.0)
        assert result.series["caesar"]["30%"] <= result.series["epaxos"]["30%"]


class TestFigure11:
    def test_breakdown_proportions_sum_to_one(self):
        result = figures.figure11_breakdown(conflict_rates=(0.0, 0.3), clients_per_site=3,
                                            **SMALL)
        for rate_label in ("0%", "30%"):
            total = sum(result.series[phase][rate_label] for phase in
                        ("propose", "retry", "deliver"))
            assert total == pytest.approx(1.0, abs=1e-6)

    def test_wait_times_present_per_site(self):
        result = figures.figure11_breakdown(conflict_rates=(0.3,), clients_per_site=3, **SMALL)
        wait_times = result.extra["wait_times"]
        assert set(wait_times) == set(EC2_SHORT_LABELS.values())


class TestFigure12:
    def test_throughput_dips_after_crash_and_recovers(self):
        result = figures.figure12_failure_timeline(protocols=("caesar",), clients_per_site=8,
                                                   crash_at_ms=4000.0, total_ms=10000.0)
        series = result.series["caesar"]
        before = series["3s"]
        dip = min(series["4s"], series["5s"], series["6s"])
        after = series["9s"]
        assert before > 0
        assert dip < before
        assert after >= dip
