"""Tests for the high-throughput event engine.

Covers the guarantees the engine rewrite must preserve:

* determinism — the same seed produces the identical event interleaving and
  identical :class:`NetworkStats`, in any process;
* lazy-cancellation semantics;
* FIFO tie-breaking among simultaneous events within a priority;
* the cadenced ``run_until`` fast path;
* a wall-clock floor on raw simulator throughput, so hot-path regressions
  fail loudly instead of silently making every benchmark slower.
"""

from __future__ import annotations

import time

import pytest

from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.sim.events import EventQueue
from repro.sim.simulator import Simulator, total_events_executed


class TestDeterminism:
    def _trace(self, seed: int):
        """Run a jittery scheduling workload and return its event trace."""
        sim = Simulator(seed=seed)
        trace = []

        def emit(tag):
            trace.append((tag, round(sim.now, 6)))
            if len(trace) < 200:
                sim.schedule(sim.rng.uniform(0.0, 5.0), emit, args=(tag + 1,))

        for i in range(8):
            sim.schedule(sim.rng.uniform(0.0, 5.0), emit, args=(i * 1000,))
        sim.run()
        return trace

    def test_same_seed_identical_interleaving(self):
        assert self._trace(seed=11) == self._trace(seed=11)

    def test_different_seed_different_interleaving(self):
        assert self._trace(seed=11) != self._trace(seed=12)

    def test_same_seed_identical_network_stats_and_logs(self):
        """End-to-end determinism: two identical experiments match exactly."""

        def run():
            result = run_experiment(ExperimentConfig(
                protocol="caesar", conflict_rate=0.2, clients_per_site=4,
                duration_ms=1500.0, warmup_ms=300.0, seed=21))
            stats = result.cluster.network.stats
            logs = [[c.command_id for c in r.execution_log]
                    for r in result.cluster.replicas]
            return stats, logs, result.cluster.sim.steps_executed

        first_stats, first_logs, first_steps = run()
        second_stats, second_logs, second_steps = run()
        assert first_stats == second_stats
        assert first_logs == second_logs
        assert first_steps == second_steps

    def test_forked_streams_stable_across_processes(self):
        """Derived seeds must not depend on the per-process hash salt."""
        sim = Simulator(seed=7)
        # Pinned value: if this changes, every checked-in figure table under
        # benchmarks/results/ silently stops being reproducible.
        assert sim.rng.fork("network").seed == 1911001485


class TestCancellation:
    def test_cancel_is_lazy_but_exact(self):
        queue = EventQueue()
        fired = []
        keep = queue.push(1.0, lambda: fired.append("keep"))
        drop = queue.push(1.0, lambda: fired.append("drop"))
        drop.cancel()
        assert len(queue) == 2  # lazy: cancelled event still counted
        while (event := queue.pop()) is not None:
            event.fire()
        assert fired == ["keep"]
        assert not keep.cancelled and drop.cancelled

    def test_cancelled_timer_never_fires_after_requeue(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(5.0, lambda: fired.append("a"))
        sim.schedule(1.0, handle.cancel)
        sim.schedule(5.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["b"]

    def test_cancel_mid_run_of_simultaneous_event(self):
        """An event may cancel a later event scheduled for the same instant."""
        sim = Simulator()
        fired = []
        victim = sim.schedule(2.0, lambda: fired.append("victim"), priority=1)
        sim.schedule(2.0, victim.cancel, priority=0)
        sim.run()
        assert fired == []


class TestTieBreaking:
    def test_fifo_within_priority_under_interleaved_pushes(self):
        queue = EventQueue()
        fired = []
        queue.push(3.0, lambda: fired.append("p1-first"), priority=1)
        queue.push(3.0, lambda: fired.append("p0-first"), priority=0)
        queue.push(3.0, lambda: fired.append("p1-second"), priority=1)
        queue.push(3.0, lambda: fired.append("p0-second"), priority=0)
        while (event := queue.pop()) is not None:
            event.fire()
        assert fired == ["p0-first", "p0-second", "p1-first", "p1-second"]

    def test_fifo_preserved_for_nested_same_time_scheduling(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append("outer")
            sim.schedule(0.0, lambda: fired.append("nested"))

        sim.schedule(1.0, outer)
        sim.schedule(1.0, lambda: fired.append("sibling"))
        sim.run()
        # The nested zero-delay event was pushed after the sibling, so FIFO
        # ordering at t=1.0 delivers the sibling first.
        assert fired == ["outer", "sibling", "nested"]


class TestRunUntilCadence:
    def _counting_sim(self):
        sim = Simulator()
        counter = []
        for i in range(50):
            sim.schedule(float(i + 1), lambda i=i: counter.append(i))
        return sim, counter

    def test_cadence_one_stops_exactly(self):
        sim, counter = self._counting_sim()
        assert sim.run_until(lambda: len(counter) >= 10)
        assert len(counter) == 10

    def test_larger_cadence_same_order_bounded_overshoot(self):
        sim, counter = self._counting_sim()
        assert sim.run_until(lambda: len(counter) >= 10, check_every=8)
        assert 10 <= len(counter) <= 17  # at most check_every - 1 extra events
        assert counter == list(range(len(counter)))  # ordering unchanged

    def test_cadence_respects_deadline(self):
        sim, counter = self._counting_sim()
        assert not sim.run_until(lambda: False, deadline=25.0, check_every=16)
        assert sim.now == 25.0

    def test_invalid_cadence_rejected(self):
        sim, _ = self._counting_sim()
        with pytest.raises(ValueError):
            sim.run_until(lambda: True, check_every=0)


class TestEngineThroughput:
    """Wall-clock floors so hot-path regressions fail loudly.

    The floors are ~4x below the rates measured on a developer container
    (~530k events/s raw, ~50k events/s through the full CAESAR stack), which
    leaves room for slow CI hardware while still catching order-of-magnitude
    regressions like per-event closure allocation or O(n) queue operations.
    """

    def test_raw_event_loop_floor(self):
        sim = Simulator(seed=1)
        total = 200_000
        state = {"count": 0}

        def tick():
            state["count"] += 1
            if state["count"] < total:
                sim.schedule(0.01, tick)

        for _ in range(4):
            sim.schedule(0.01, tick)
        start = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - start
        rate = state["count"] / wall
        assert rate > 120_000, f"raw event loop regressed to {rate:,.0f} events/s"

    def test_protocol_stack_events_per_second_floor(self):
        before = total_events_executed()
        start = time.perf_counter()
        run_experiment(ExperimentConfig(
            protocol="caesar", conflict_rate=0.1, clients_per_site=10,
            duration_ms=2000.0, warmup_ms=500.0, seed=3))
        wall = time.perf_counter() - start
        events = total_events_executed() - before
        rate = events / wall
        assert rate > 12_000, f"protocol hot path regressed to {rate:,.0f} events/s"
