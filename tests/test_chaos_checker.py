"""Tests for the per-key linearizability checker and the kvstore spec.

The positive control required by the chaos work: the checker must accept
every history a sequential single-client run can produce, and must reject a
library of hand-built known-non-linearizable histories — proving the oracle
has discriminating power before it is trusted to judge protocols.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.chaos.checker import check_operations
from repro.chaos.history import HistoryTape, Operation
from repro.consensus.command import Command
from repro.kvstore.spec import apply_op
from repro.kvstore.store import KeyValueStore
from repro.sim.simulator import Simulator


def op(op_id: int, key: str, operation: str, value=None, output=None,
       invoked_at: float = 0.0, responded_at=None, client_id: int = 0) -> Operation:
    """Hand-build one history operation."""
    return Operation(op_id=op_id, client_id=client_id, key=key, operation=operation,
                     value=value, invoked_at=invoked_at, output=output,
                     responded_at=responded_at)


# ---------------------------------------------------------------------------
# Spec <-> real store agreement
# ---------------------------------------------------------------------------

op_strategy = st.tuples(st.sampled_from(["put", "get", "delete"]),
                        st.sampled_from(["a", "b"]),
                        st.one_of(st.none(), st.text(max_size=3)))


class TestSpecMatchesStore:
    @given(ops=st.lists(op_strategy, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_spec_agrees_with_key_value_store(self, ops):
        """The per-key register spec and the real store can never drift apart."""
        store = KeyValueStore()
        registers = {}
        for index, (operation, key, value) in enumerate(ops):
            command = Command(command_id=(0, index), key=key, operation=operation,
                              value=value)
            observed = store.apply(command)
            registers[key], expected = apply_op(registers.get(key), operation, value)
            assert observed == expected
            assert store.get(key) == registers[key]


# ---------------------------------------------------------------------------
# Histories the checker must accept
# ---------------------------------------------------------------------------


class TestCheckerAccepts:
    def test_empty_history(self):
        assert check_operations([]).ok

    def test_sequential_puts_and_gets(self):
        history = [
            op(0, "k", "put", value="v1", output=None, invoked_at=0, responded_at=1),
            op(1, "k", "get", output="v1", invoked_at=2, responded_at=3),
            op(2, "k", "put", value="v2", output="v1", invoked_at=4, responded_at=5),
            op(3, "k", "delete", output="v2", invoked_at=6, responded_at=7),
            op(4, "k", "get", output=None, invoked_at=8, responded_at=9),
        ]
        assert check_operations(history).ok

    def test_concurrent_puts_linearize_in_either_order(self):
        # Both puts overlap; the read pins which one came second.
        history = [
            op(0, "k", "put", value="a", output="b", invoked_at=0, responded_at=10),
            op(1, "k", "put", value="b", output=None, invoked_at=0, responded_at=10,
               client_id=1),
            op(2, "k", "get", output="a", invoked_at=11, responded_at=12),
        ]
        assert check_operations(history).ok

    def test_pending_op_that_never_took_effect(self):
        history = [
            op(0, "k", "put", value="v1", output=None, invoked_at=0, responded_at=1),
            op(1, "k", "put", value="lost", invoked_at=2, responded_at=None),
            op(2, "k", "get", output="v1", invoked_at=5, responded_at=6),
        ]
        assert check_operations(history).ok

    def test_pending_op_that_took_effect_late(self):
        history = [
            op(0, "k", "put", value="v1", output=None, invoked_at=0, responded_at=1),
            op(1, "k", "put", value="late", invoked_at=2, responded_at=None),
            op(2, "k", "get", output="late", invoked_at=50, responded_at=51),
        ]
        assert check_operations(history).ok

    def test_different_clients_at_touching_instants_are_concurrent(self):
        """The same touching-instant shape across two clients carries no
        program order: either linearization is legal."""
        history = [
            op(0, "k", "put", value="a", output=None, invoked_at=0, responded_at=10,
               client_id=7),
            op(1, "k", "get", output=None, invoked_at=10, responded_at=20, client_id=8),
        ]
        assert check_operations(history).ok

    def test_late_response_of_abandoned_op_overlaps_its_successor(self):
        """A command abandoned at a reconnect timeout may respond *after* the
        client's next command; the two genuinely overlap, so the abandoned op
        may linearize second."""
        history = [
            op(0, "k", "put", value="a", output="b", invoked_at=0, responded_at=50,
               client_id=7),
            op(1, "k", "put", value="b", output=None, invoked_at=10, responded_at=20,
               client_id=7),
            op(2, "k", "get", output="a", invoked_at=60, responded_at=70, client_id=7),
        ]
        assert check_operations(history).ok

    def test_keys_are_checked_independently(self):
        history = [
            op(0, "a", "put", value="x", output=None, invoked_at=0, responded_at=1),
            op(1, "b", "put", value="y", output=None, invoked_at=0, responded_at=1,
               client_id=1),
            op(2, "a", "get", output="x", invoked_at=2, responded_at=3),
            op(3, "b", "get", output="y", invoked_at=2, responded_at=3, client_id=1),
        ]
        report = check_operations(history)
        assert report.ok
        assert set(report.key_reports) == {"a", "b"}

    @given(ops=st.lists(op_strategy, min_size=1, max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_accepts_every_sequential_single_client_history(self, ops):
        """Positive control: anything one client does sequentially is linearizable."""
        store = KeyValueStore()
        history = []
        now = 0.0
        for index, (operation, key, value) in enumerate(ops):
            command = Command(command_id=(0, index), key=key, operation=operation,
                              value=value)
            output = store.apply(command)
            history.append(op(index, key, operation, value=value, output=output,
                              invoked_at=now, responded_at=now + 1.0))
            now += 2.0
        report = check_operations(history)
        assert report.ok, report.describe()


# ---------------------------------------------------------------------------
# Histories the checker must reject
# ---------------------------------------------------------------------------


class TestCheckerRejects:
    """Library of hand-built known-non-linearizable histories."""

    def assert_rejected(self, history):
        report = check_operations(history)
        assert not report.ok
        assert report.violations, report.describe()

    def test_stale_read_after_completed_put(self):
        self.assert_rejected([
            op(0, "k", "put", value="v1", output=None, invoked_at=0, responded_at=1),
            op(1, "k", "get", output=None, invoked_at=2, responded_at=3),
        ])

    def test_lost_update_both_puts_see_empty(self):
        self.assert_rejected([
            op(0, "k", "put", value="a", output=None, invoked_at=0, responded_at=1),
            op(1, "k", "put", value="b", output=None, invoked_at=2, responded_at=3,
               client_id=1),
        ])

    def test_put_returns_wrong_previous_value(self):
        self.assert_rejected([
            op(0, "k", "put", value="a", output=None, invoked_at=0, responded_at=1),
            op(1, "k", "put", value="b", output="zzz", invoked_at=2, responded_at=3),
        ])

    def test_read_from_the_future(self):
        # The get completed before put(a) was even invoked.
        self.assert_rejected([
            op(0, "k", "get", output="a", invoked_at=0, responded_at=1),
            op(1, "k", "put", value="a", output=None, invoked_at=5, responded_at=6),
        ])

    def test_non_monotonic_reads(self):
        self.assert_rejected([
            op(0, "k", "put", value="v1", output=None, invoked_at=0, responded_at=1),
            op(1, "k", "put", value="v2", output="v1", invoked_at=2, responded_at=3),
            op(2, "k", "get", output="v2", invoked_at=4, responded_at=5),
            op(3, "k", "get", output="v1", invoked_at=6, responded_at=7),
        ])

    def test_same_client_stale_read_at_touching_instants(self):
        """Think-time-zero clients invoke the next op at the exact instant the
        previous one responded; the tie must not dissolve their program order
        (a stale read right after the client's own completed put is still a
        violation)."""
        self.assert_rejected([
            op(0, "k", "put", value="a", output=None, invoked_at=0, responded_at=10,
               client_id=7),
            op(1, "k", "get", output=None, invoked_at=10, responded_at=20, client_id=7),
        ])

    def test_delete_returns_wrong_victim(self):
        self.assert_rejected([
            op(0, "k", "put", value="a", output=None, invoked_at=0, responded_at=1),
            op(1, "k", "delete", output="b", invoked_at=2, responded_at=3),
        ])

    def test_read_sees_value_of_an_op_that_never_happened(self):
        self.assert_rejected([
            op(0, "k", "put", value="real", output=None, invoked_at=0, responded_at=1),
            op(1, "k", "get", output="ghost", invoked_at=2, responded_at=3),
        ])

    def test_violation_only_poisons_its_own_key(self):
        history = [
            op(0, "good", "put", value="x", output=None, invoked_at=0, responded_at=1),
            op(1, "good", "get", output="x", invoked_at=2, responded_at=3),
            op(2, "bad", "put", value="y", output=None, invoked_at=0, responded_at=1),
            op(3, "bad", "get", output=None, invoked_at=2, responded_at=3),
        ]
        report = check_operations(history)
        assert not report.ok
        assert report.key_reports["good"].ok
        assert not report.key_reports["bad"].ok
        assert "bad" in report.describe()


# ---------------------------------------------------------------------------
# Budget / tape mechanics
# ---------------------------------------------------------------------------


class TestBudgetAndTape:
    def test_exhausted_budget_reports_inconclusive_not_ok(self):
        history = [
            op(0, "k", "put", value="a", output=None, invoked_at=0, responded_at=1),
        ]
        report = check_operations(history, max_states_per_key=0)
        assert not report.ok
        assert report.inconclusive
        assert not report.violations

    def test_tape_records_invocations_and_responses(self):
        sim = Simulator(seed=1)
        tape = HistoryTape(sim)
        first = tape.invoke(7, "k", "put", "v")
        assert first.is_pending
        sim.run(until=5.0)
        tape.respond(first, None)
        assert first.responded_at == 5.0
        assert tape.completed == [first]
        assert tape.pending == []
        assert tape.per_key() == {"k": [first]}

    def test_tape_rejects_double_response(self):
        import pytest

        tape = HistoryTape(Simulator(seed=1))
        taped = tape.invoke(0, "k", "get")
        tape.respond(taped, None)
        with pytest.raises(ValueError, match="already responded"):
            tape.respond(taped, None)
