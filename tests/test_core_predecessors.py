"""Unit tests for predecessor computation and the wait condition (Figure 3)."""

from __future__ import annotations

import pytest

from repro.consensus.ballots import Ballot
from repro.consensus.timestamps import LogicalTimestamp
from repro.core.history import CommandHistory, CommandStatus
from repro.core.predecessors import WaitManager, compute_predecessors
from tests.conftest import make_command


def ts(counter: int, node: int = 0) -> LogicalTimestamp:
    return LogicalTimestamp(counter, node)


BALLOT = Ballot.initial(0)


class TestComputePredecessors:
    def test_earlier_conflicting_commands_are_predecessors(self):
        history = CommandHistory()
        old = make_command(0, 0, key="x")
        history.update(old, ts(1), set(), CommandStatus.FAST_PENDING, BALLOT)
        new = make_command(1, 0, key="x")
        assert compute_predecessors(history, new, ts(5), None) == {old.command_id}

    def test_later_conflicting_commands_excluded(self):
        history = CommandHistory()
        future = make_command(0, 0, key="x")
        history.update(future, ts(9), set(), CommandStatus.FAST_PENDING, BALLOT)
        new = make_command(1, 0, key="x")
        assert compute_predecessors(history, new, ts(5), None) == set()

    def test_non_conflicting_commands_excluded(self):
        history = CommandHistory()
        other = make_command(0, 0, key="y")
        history.update(other, ts(1), set(), CommandStatus.FAST_PENDING, BALLOT)
        new = make_command(1, 0, key="x")
        assert compute_predecessors(history, new, ts(5), None) == set()

    def test_whitelist_forces_membership(self):
        """A whitelisted command is a predecessor even if only fast-pending."""
        history = CommandHistory()
        pending = make_command(0, 0, key="x")
        history.update(pending, ts(1), set(), CommandStatus.FAST_PENDING, BALLOT)
        new = make_command(1, 0, key="x")
        whitelist = frozenset({pending.command_id})
        assert compute_predecessors(history, new, ts(5), whitelist) == {pending.command_id}

    def test_whitelist_excludes_fast_pending_not_listed(self):
        """With a whitelist, a fast-pending command outside it is not a predecessor."""
        history = CommandHistory()
        pending = make_command(0, 0, key="x")
        history.update(pending, ts(1), set(), CommandStatus.FAST_PENDING, BALLOT)
        new = make_command(1, 0, key="x")
        assert compute_predecessors(history, new, ts(5), frozenset()) == set()

    def test_whitelist_keeps_decided_commands(self):
        """With a whitelist, accepted/stable earlier commands stay predecessors."""
        history = CommandHistory()
        stable = make_command(0, 0, key="x")
        history.update(stable, ts(1), set(), CommandStatus.STABLE, BALLOT)
        new = make_command(1, 0, key="x")
        assert compute_predecessors(history, new, ts(5), frozenset()) == {stable.command_id}


class ManualClock:
    def __init__(self) -> None:
        self.value = 0.0

    def __call__(self) -> float:
        return self.value


class TestWaitCondition:
    def make_manager(self, enabled: bool = True):
        history = CommandHistory()
        clock = ManualClock()
        return history, clock, WaitManager(history, clock, enabled=enabled)

    def test_no_conflicts_resolves_ok_immediately(self):
        history, clock, manager = self.make_manager()
        outcomes = []
        manager.evaluate(make_command(0, 0, key="x"), ts(3),
                         lambda ok, waited: outcomes.append((ok, waited)))
        assert outcomes == [(True, 0.0)]

    def test_pending_higher_timestamp_conflict_parks_proposal(self):
        """Out-of-order reception (Figure 2a): the earlier command must wait."""
        history, clock, manager = self.make_manager()
        later = make_command(9, 0, key="x")
        history.update(later, ts(10), set(), CommandStatus.FAST_PENDING, BALLOT)
        outcomes = []
        manager.evaluate(make_command(0, 0, key="x"), ts(3),
                         lambda ok, waited: outcomes.append((ok, waited)))
        assert outcomes == []
        assert manager.parked_count() == 1

    def test_parked_proposal_resolves_ok_when_included_in_predecessors(self):
        """If the later command eventually lists us as a predecessor, WAIT returns OK."""
        history, clock, manager = self.make_manager()
        early = make_command(0, 0, key="x")
        later = make_command(9, 0, key="x")
        history.update(later, ts(10), set(), CommandStatus.FAST_PENDING, BALLOT)
        outcomes = []
        manager.evaluate(early, ts(3), lambda ok, waited: outcomes.append((ok, waited)))
        clock.value = 40.0
        history.update(later, ts(10), {early.command_id}, CommandStatus.STABLE, BALLOT)
        manager.notify_change("x")
        assert outcomes == [(True, 40.0)]
        assert manager.parked_count() == 0
        assert manager.total_waits == 1
        assert manager.total_wait_ms == pytest.approx(40.0)

    def test_parked_proposal_resolves_nack_when_excluded(self):
        """Figure 2b: the later command decides without us; WAIT returns NACK."""
        history, clock, manager = self.make_manager()
        early = make_command(0, 0, key="x")
        later = make_command(9, 0, key="x")
        history.update(later, ts(10), set(), CommandStatus.FAST_PENDING, BALLOT)
        outcomes = []
        manager.evaluate(early, ts(3), lambda ok, waited: outcomes.append((ok, waited)))
        history.update(later, ts(10), set(), CommandStatus.STABLE, BALLOT)
        manager.notify_change("x")
        assert outcomes == [(False, 0.0)]

    def test_immediate_nack_when_conflict_already_stable(self):
        history, clock, manager = self.make_manager()
        early = make_command(0, 0, key="x")
        later = make_command(9, 0, key="x")
        history.update(later, ts(10), set(), CommandStatus.STABLE, BALLOT)
        outcomes = []
        manager.evaluate(early, ts(3), lambda ok, waited: outcomes.append((ok, waited)))
        assert outcomes == [(False, 0.0)]

    def test_lower_timestamp_conflict_does_not_block(self):
        """Only conflicts with *greater* timestamps can block or reject a proposal."""
        history, clock, manager = self.make_manager()
        older = make_command(9, 0, key="x")
        history.update(older, ts(1), set(), CommandStatus.FAST_PENDING, BALLOT)
        outcomes = []
        manager.evaluate(make_command(0, 0, key="x"), ts(3),
                         lambda ok, waited: outcomes.append((ok, waited)))
        assert outcomes == [(True, 0.0)]

    def test_disabled_wait_condition_rejects_instead_of_parking(self):
        """Ablation mode: proposals that would wait are rejected immediately."""
        history, clock, manager = self.make_manager(enabled=False)
        later = make_command(9, 0, key="x")
        history.update(later, ts(10), set(), CommandStatus.FAST_PENDING, BALLOT)
        outcomes = []
        manager.evaluate(make_command(0, 0, key="x"), ts(3),
                         lambda ok, waited: outcomes.append((ok, waited)))
        assert outcomes == [(False, 0.0)]

    def test_notify_change_on_other_key_is_noop(self):
        history, clock, manager = self.make_manager()
        later = make_command(9, 0, key="x")
        history.update(later, ts(10), set(), CommandStatus.FAST_PENDING, BALLOT)
        outcomes = []
        manager.evaluate(make_command(0, 0, key="x"), ts(3),
                         lambda ok, waited: outcomes.append((ok, waited)))
        manager.notify_change("unrelated")
        assert outcomes == []

    def test_drop_command_removes_parked_proposal(self):
        history, clock, manager = self.make_manager()
        early = make_command(0, 0, key="x")
        later = make_command(9, 0, key="x")
        history.update(later, ts(10), set(), CommandStatus.FAST_PENDING, BALLOT)
        manager.evaluate(early, ts(3), lambda ok, waited: None)
        assert manager.parked_count() == 1
        manager.drop_command(early.command_id, "x")
        assert manager.parked_count() == 0

    def test_multiple_blockers_all_must_clear(self):
        history, clock, manager = self.make_manager()
        early = make_command(0, 0, key="x")
        blocker_one = make_command(8, 0, key="x")
        blocker_two = make_command(9, 0, key="x")
        history.update(blocker_one, ts(10), set(), CommandStatus.FAST_PENDING, BALLOT)
        history.update(blocker_two, ts(11), set(), CommandStatus.FAST_PENDING, BALLOT)
        outcomes = []
        manager.evaluate(early, ts(3), lambda ok, waited: outcomes.append((ok, waited)))
        history.update(blocker_one, ts(10), {early.command_id}, CommandStatus.STABLE, BALLOT)
        manager.notify_change("x")
        assert outcomes == []
        history.update(blocker_two, ts(11), {early.command_id}, CommandStatus.STABLE, BALLOT)
        manager.notify_change("x")
        assert outcomes == [(True, 0.0)]
