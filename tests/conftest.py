"""Shared pytest fixtures for the CAESAR reproduction test suite."""

from __future__ import annotations

import os
import signal

import pytest

from repro.consensus.command import Command
from repro.consensus.quorums import QuorumSystem
from repro.core.caesar import CaesarReplica
from repro.core.config import CaesarConfig
from repro.kvstore.store import KeyValueStore
from repro.sim.network import Network, NetworkConfig
from repro.sim.simulator import Simulator
from repro.sim.topology import ec2_five_sites, uniform_topology


#: Default per-test wall-clock budget in seconds.  A simulator or protocol
#: regression that turns a test into an endless event loop should fail loudly
#: and quickly instead of hanging the whole suite; override per test with
#: ``@pytest.mark.deadline(seconds)`` or globally with REPRO_TEST_DEADLINE_S.
DEFAULT_TEST_DEADLINE_S = 120.0


class TestDeadlineExceeded(Exception):
    """Raised inside a test that overran its wall-clock deadline."""


@pytest.fixture(autouse=True)
def _test_deadline(request):
    """Fail any test that runs longer than its wall-clock deadline.

    Uses ``SIGALRM`` (skipped on platforms without it, and under ``-p
    no:cacheprovider`` style workers running off the main thread).  The limit
    is deliberately generous — it exists to catch hangs, not slowness.
    """
    limit = float(os.environ.get("REPRO_TEST_DEADLINE_S", DEFAULT_TEST_DEADLINE_S))
    marker = request.node.get_closest_marker("deadline")
    if marker is not None and marker.args:
        limit = float(marker.args[0])
    if limit <= 0 or not hasattr(signal, "SIGALRM"):
        yield
        return
    def _on_alarm(signum, frame):
        raise TestDeadlineExceeded(f"test exceeded its {limit:.0f}s deadline")

    try:
        previous = signal.signal(signal.SIGALRM, _on_alarm)
    except ValueError:  # not on the main thread
        yield
        return
    signal.setitimer(signal.ITIMER_REAL, limit)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator with a fixed seed."""
    return Simulator(seed=42)


@pytest.fixture
def topology():
    """The paper's five-site EC2 topology."""
    return ec2_five_sites()


@pytest.fixture
def network(sim, topology) -> Network:
    """A network over the EC2 topology with no jitter or loss."""
    return Network(sim, topology, NetworkConfig())


@pytest.fixture
def quorums() -> QuorumSystem:
    """Quorum sizes for the five-node cluster."""
    return QuorumSystem.for_cluster(5)


def make_command(client: int, seq: int, key: str = "k", origin: int = 0,
                 operation: str = "put") -> Command:
    """Convenience constructor for test commands."""
    return Command(command_id=(client, seq), key=key, operation=operation,
                   value=f"v{client}.{seq}", origin=origin)


@pytest.fixture
def make_cmd():
    """Fixture exposing the command factory to tests."""
    return make_command


def build_caesar_cluster(n: int = 5, seed: int = 1, recovery: bool = False,
                         wait_condition: bool = True, topology=None,
                         fast_timeout_ms: float = 400.0):
    """Build a CAESAR cluster directly (without the harness) for protocol tests.

    Returns ``(sim, network, replicas)``.
    """
    topology = topology or (ec2_five_sites() if n == 5 else uniform_topology(n, rtt_ms=40.0))
    sim = Simulator(seed=seed)
    network = Network(sim, topology)
    quorums = QuorumSystem.for_cluster(n)
    config = CaesarConfig(recovery_enabled=recovery, wait_condition_enabled=wait_condition,
                          fast_proposal_timeout_ms=fast_timeout_ms)
    replicas = [CaesarReplica(i, sim, network, quorums, KeyValueStore(), config=config)
                for i in range(n)]
    if recovery:
        for replica in replicas:
            replica.start()
    return sim, network, replicas


@pytest.fixture
def caesar_cluster():
    """Factory fixture for CAESAR clusters."""
    return build_caesar_cluster
