"""The chaos conformance matrix and the oracle-teeth controls.

Every protocol must pass every named nemesis schedule — lossy ones included,
now that the runtime retransmission + catch-up layer recovers lost quorum
traffic after the heal: zero linearizability violations, zero
internal-divergence violations, and progress after the heal.  Two controls
keep the oracle honest:

* a deliberately-broken protocol (dirty local reads before consensus) **is**
  flagged by the linearizability checker;
* with retransmission *disabled* (``retransmit_enabled=False``), the
  slot-contiguous protocols under probabilistic message loss stay safe
  (linearizable) but lose liveness — the checker must distinguish exactly
  that, and the disable flag must reproduce the pre-retransmission split.
"""

from __future__ import annotations

import pytest

from repro.baselines.multipaxos import MultiPaxosReplica
from repro.chaos.checker import check_history
from repro.chaos.history import HistoryTape
from repro.chaos.nemesis import CONFORMANCE_SCHEDULES, random_plan
from repro.consensus.command import Command, CommandResult
from repro.consensus.quorums import QuorumSystem
from repro.harness.chaos import ChaosConfig, run_chaos, run_conformance_matrix
from repro.kvstore.store import KeyValueStore
from repro.sim.network import Network, NetworkConfig
from repro.sim.random import DeterministicRandom
from repro.sim.simulator import Simulator
from repro.sim.topology import ec2_five_sites

PROTOCOLS = ("caesar", "epaxos", "m2paxos", "mencius", "multipaxos")


class TestConformanceMatrix:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("schedule", CONFORMANCE_SCHEDULES)
    def test_protocol_survives_schedule(self, protocol, schedule):
        result = run_chaos(ChaosConfig(protocol=protocol, schedule=schedule, seed=3))
        assert result.ok, (
            f"{protocol} x {schedule}: {result.verdict()} — "
            f"probes {result.probes_completed}/{result.probes_submitted}; "
            f"{result.report.describe()}")
        # The matrix must actually exercise the fault plane and the tape.
        # (clock-skew perturbs timers, not links; crash-restart goes through
        # the crash injector, so neither registers LinkFaults stats.)
        assert result.client_stats.completed > 0
        assert result.fault_stats or schedule in ("clock-skew", "crash-restart")

    def test_matrix_helper_covers_cross_product(self):
        results = run_conformance_matrix(["caesar"], ["minority-partition", "clock-skew"],
                                         seed=3)
        assert [(r.config.protocol, r.plan.name) for r in results] == [
            ("caesar", "minority-partition"), ("caesar", "clock-skew")]
        assert all(r.ok for r in results)

    def test_chaos_run_is_deterministic(self):
        first = run_chaos(ChaosConfig(protocol="epaxos", schedule="dup-reorder", seed=11))
        second = run_chaos(ChaosConfig(protocol="epaxos", schedule="dup-reorder", seed=11))
        assert first.events_executed == second.events_executed
        assert first.fault_stats == second.fault_stats
        assert first.client_stats == second.client_stats
        assert first.verdict() == second.verdict()

    def test_random_loss_free_schedules_pass_on_caesar(self):
        root = DeterministicRandom(21)
        for index in range(3):
            plan = random_plan(root.fork_cell(("conformance-random", index)),
                               5, 1000.0, 2000.0)
            result = run_chaos(ChaosConfig(protocol="caesar", plan=plan, seed=21))
            assert result.ok, f"random plan {index}: {result.verdict()}"


class TestSafetyWithoutLiveness:
    """Negative control, now behind the disable flag: without retransmission,
    loss costs the slot-contiguous protocols liveness but never
    linearizability — the two verdicts must separate cleanly.  With the
    (default) retransmission + catch-up layer the same runs pass outright —
    the historical split is reproducible via ``retransmit_enabled=False``.
    """

    @pytest.mark.parametrize("protocol", ["mencius", "multipaxos"])
    def test_message_loss_recovered_by_retransmission(self, protocol):
        result = run_chaos(ChaosConfig(protocol=protocol, schedule="flaky-links", seed=3))
        assert result.progress
        assert result.ok, f"{protocol} x flaky-links: {result.verdict()}"

    @pytest.mark.parametrize("protocol", ["mencius", "multipaxos"])
    def test_without_retransmission_loss_blocks_progress_but_stays_linearizable(
            self, protocol):
        result = run_chaos(ChaosConfig(protocol=protocol, schedule="flaky-links", seed=3,
                                       retransmit_enabled=False))
        assert not result.progress
        assert result.report.ok, result.report.describe()
        assert not result.internal_violations
        assert not result.ok


class DirtyReadMultiPaxos(MultiPaxosReplica):
    """Deliberately broken: answers clients from local state *before* consensus."""

    def submit(self, command, callback=None):
        if callback is not None:
            previous = self.state_machine._data.get(command.key)
            self.state_machine._data[command.key] = command.value or ""
            result = CommandResult(command_id=command.command_id, value=previous,
                                   executed_at=self.sim.now)
            self.sim.schedule(0.1, lambda: callback(result))
        super().submit(command)


class TestOracleHasTeeth:
    def test_dirty_read_mutation_is_flagged(self):
        """Two sites' clients hammer one key on the broken protocol: their
        locally-invented responses cannot be linearized."""
        sim = Simulator(seed=1)
        network = Network(sim, ec2_five_sites(), NetworkConfig(jitter_ms=2.0))
        quorums = QuorumSystem.for_cluster(5)
        replicas = [DirtyReadMultiPaxos(i, sim, network, quorums, KeyValueStore(),
                                        recovery_enabled=False) for i in range(5)]
        tape = HistoryTape(sim)

        def submit(origin, client, seq, value, delay):
            command = Command(command_id=(client, seq), key="hot", operation="put",
                              value=value, origin=origin)

            def fire():
                taped = tape.invoke(client, "hot", "put", value)
                replicas[origin].submit(
                    command, callback=lambda r, taped=taped: tape.respond(taped, r.value))

            sim.schedule(delay, fire)

        for i in range(4):
            submit(0, 100, i, f"a{i}", i * 30.0)
            submit(3, 101, i, f"b{i}", i * 30.0 + 5.0)
        sim.run(until=5000.0)

        report = check_history(tape)
        assert not report.ok
        assert report.violations
        assert "hot" in report.describe()

    def test_honest_multipaxos_same_workload_passes(self):
        """The same workload on the unbroken protocol is linearizable —
        the flag above is the mutation's fault, not the harness's."""
        sim = Simulator(seed=1)
        network = Network(sim, ec2_five_sites(), NetworkConfig(jitter_ms=2.0))
        quorums = QuorumSystem.for_cluster(5)
        replicas = [MultiPaxosReplica(i, sim, network, quorums, KeyValueStore(),
                                      recovery_enabled=False) for i in range(5)]
        tape = HistoryTape(sim)

        def submit(origin, client, seq, value, delay):
            command = Command(command_id=(client, seq), key="hot", operation="put",
                              value=value, origin=origin)

            def fire():
                taped = tape.invoke(client, "hot", "put", value)
                replicas[origin].submit(
                    command, callback=lambda r, taped=taped: tape.respond(taped, r.value))

            sim.schedule(delay, fire)

        for i in range(4):
            submit(0, 100, i, f"a{i}", i * 30.0)
            submit(3, 101, i, f"b{i}", i * 30.0 + 5.0)
        sim.run(until=5000.0)

        report = check_history(tape)
        assert report.ok, report.describe()
