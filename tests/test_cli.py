"""Tests for the ``caesar-repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import FIGURE_DRIVERS, QUICK_OVERRIDES, build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.protocol == "caesar"
        assert args.conflicts == 0.0
        assert args.clients == 10
        assert not args.batching

    def test_run_rejects_unknown_protocol(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--protocol", "raft"])

    def test_figure_rejects_unknown_number(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "99"])

    def test_every_figure_has_a_quick_profile(self):
        assert set(FIGURE_DRIVERS) == set(QUICK_OVERRIDES)


class TestCommands:
    def test_topology_command(self, capsys):
        assert main(["topology"]) == 0
        output = capsys.readouterr().out
        for site in ("virginia", "mumbai", "frankfurt"):
            assert site in output

    def test_run_command_small(self, capsys):
        code = main(["run", "--protocol", "caesar", "--conflicts", "10", "--clients", "2",
                     "--duration", "1500"])
        assert code == 0
        output = capsys.readouterr().out
        assert "throughput" in output
        assert "mean latency" in output
        assert "consistency violations: 0" in output

    def test_run_command_with_batching_and_throughput_model(self, capsys):
        code = main(["run", "--protocol", "epaxos", "--clients", "2", "--duration", "1200",
                     "--batching", "--throughput"])
        assert code == 0
        assert "commands/s" in capsys.readouterr().out

    def test_figure_seven_quick(self, capsys):
        code = main(["figure", "7", "--quick"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Figure 7" in output
        assert "IN" in output

    def test_sweep_list_cells_runs_nothing(self, capsys):
        code = main(["sweep", "9", "--list-cells", "--cells", "fig9/caesar/*"])
        assert code == 0
        output = capsys.readouterr().out
        assert "sweep 9" in output
        # Filtered grid: caesar cells selected, others listed but skipped.
        assert "* fig9/caesar/0.0" in output
        assert "- fig9/multipaxos" in output

    def test_sweep_list_cells_full_grid(self, capsys):
        code = main(["sweep", "7", "--list-cells"])
        assert code == 0
        output = capsys.readouterr().out
        for name in ("multipaxos-IR", "multipaxos-IN", "mencius", "caesar-0%"):
            assert f"* fig7/{name}" in output


class TestChaosCommand:
    def test_list_schedules(self, capsys):
        assert main(["chaos", "--list-schedules"]) == 0
        output = capsys.readouterr().out
        assert "* minority-partition" in output
        assert "flaky-links" in output

    def test_single_run_quick(self, capsys):
        code = main(["chaos", "--protocol", "caesar", "--nemesis", "minority-partition",
                     "--seed", "3", "--quick"])
        assert code == 0
        output = capsys.readouterr().out
        assert "verdict: PASS" in output
        assert "nemesis log:" in output
        assert "linearizable" in output

    def test_matrix_quick_subset(self, capsys):
        code = main(["chaos", "--matrix", "--quick", "--seed", "7",
                     "--protocols", "caesar", "mencius",
                     "--schedules", "minority-partition", "clock-skew"])
        assert code == 0
        output = capsys.readouterr().out
        assert "4/4 cells passed" in output

    def test_matrix_failure_sets_exit_code(self, capsys):
        # With retransmission disabled, message loss costs Mencius liveness —
        # the historical split, now reproducible only behind --no-retransmit.
        code = main(["chaos", "--matrix", "--quick", "--seed", "3", "--no-retransmit",
                     "--protocols", "mencius", "--schedules", "flaky-links"])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_lossy_matrix_passes_with_retransmission(self, capsys):
        code = main(["chaos", "--matrix", "--quick", "--seed", "3",
                     "--protocols", "mencius", "--schedules", "flaky-links"])
        assert code == 0
        assert "1/1 cells passed" in capsys.readouterr().out

    def test_random_schedules(self, capsys):
        code = main(["chaos", "--protocol", "caesar", "--random", "2", "--seed", "5",
                     "--quick"])
        assert code == 0
        assert "2/2 random schedules passed" in capsys.readouterr().out

    def test_chaos_rejects_unknown_protocol(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--protocol", "raft"])


class TestServeLoadgenParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.protocol == "caesar"
        assert args.replicas == 3
        assert args.host == "127.0.0.1"
        assert args.peer is None
        assert args.node_id is None

    def test_serve_accepts_peer_map(self):
        args = build_parser().parse_args(
            ["serve", "--node-id", "1",
             "--peer", "0=10.0.0.1:7000", "--peer", "1=10.0.0.2:7000"])
        assert args.node_id == 1
        assert args.peer == ["0=10.0.0.1:7000", "1=10.0.0.2:7000"]

    def test_serve_node_id_without_peer_map_is_a_usage_error(self, capsys):
        assert main(["serve", "--node-id", "0"]) == 2
        assert "--peer" in capsys.readouterr().err

    def test_loadgen_defaults(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.protocol == "caesar"
        assert args.clients == 3
        assert args.commands == 10
        assert not args.open_loop
        assert args.endpoint is None
        assert args.launch is None

    def test_loadgen_without_endpoints_is_a_usage_error(self, capsys):
        assert main(["loadgen"]) == 2
        assert "--endpoint" in capsys.readouterr().err

    def test_parse_peers_roundtrip(self):
        from repro.net.cluster import parse_peers

        peers = parse_peers(["0=127.0.0.1:7000", "2=replica2.internal:7100"])
        assert peers == {0: ("127.0.0.1", 7000), 2: ("replica2.internal", 7100)}

    def test_parse_peers_rejects_malformed_entries(self):
        from repro.net.cluster import parse_peers

        with pytest.raises(ValueError):
            parse_peers(["0:127.0.0.1=7000"])

    def test_loadgen_warmup_flag_reaches_the_config(self):
        # Regression: loadgen used to hardwire MetricsCollector(warmup_ms=0)
        # so TCP percentiles always included cold-start samples.
        from repro.net.client import LoadgenConfig

        args = build_parser().parse_args(["loadgen", "--warmup-ms", "250"])
        assert args.warmup_ms == 250.0
        config = LoadgenConfig.from_args(args, endpoints={0: ("127.0.0.1", 7000)})
        assert config.warmup_ms == 250.0

    def test_loadgen_admission_and_store_flags_parse(self):
        args = build_parser().parse_args(
            ["loadgen", "--admission", "deadline:200", "--store", "/tmp/s.db"])
        assert args.admission == "deadline:200"
        assert args.store == "/tmp/s.db"


class TestOverloadReportCommands:
    def test_overload_defaults(self):
        args = build_parser().parse_args(["overload"])
        assert args.protocol == "caesar"
        assert args.substrate == "sim"
        assert args.offered is None
        assert args.warmup_ms == 1000.0
        assert args.admission is None
        assert args.store is None

    def test_overload_rejects_unknown_substrate(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["overload", "--substrate", "udp"])

    def test_report_defaults_to_the_shared_store(self):
        from repro.metrics.store import DEFAULT_STORE_PATH

        args = build_parser().parse_args(["report"])
        assert args.store == str(DEFAULT_STORE_PATH)
        assert args.limit == 20
        assert not args.points

    def test_report_on_a_missing_store_is_friendly(self, tmp_path, capsys):
        assert main(["report", "--store", str(tmp_path / "absent.db")]) == 0
        assert "no results store" in capsys.readouterr().out

    def test_overload_store_report_end_to_end(self, tmp_path, capsys):
        store = tmp_path / "store.db"
        code = main(["overload", "--offered", "120", "--duration", "500",
                     "--warmup-ms", "100", "--clients", "2",
                     "--store", str(store), "--label", "smoke"])
        out = capsys.readouterr().out
        assert code == 0
        assert "overload sweep" in out
        assert "[stored as run 1" in out
        assert store.exists()
        assert main(["report", "--store", str(store), "--points"]) == 0
        report = capsys.readouterr().out
        assert "smoke" in report
        assert "offered/s" in report

    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile"])
        assert args.number == "9"
        assert args.top == 20
        assert args.sort == "cumulative"
        assert args.cells is None

    def test_profile_quick_single_cell(self, tmp_path, capsys):
        store = tmp_path / "store.db"
        code = main(["profile", "6", "--quick", "--cells", "fig6/caesar/*",
                     "--top", "5", "--store", str(store)])
        assert code == 0
        output = capsys.readouterr().out
        assert "profiled figure6_latency_vs_conflicts" in output
        assert "simulator events" in output
        assert "decision path (repro/core/*)" in output
        assert "history.py:update" in output
        assert "[stored as run 1" in output
        assert store.exists()

    def test_history_gc_flag_parses_and_runs(self, capsys):
        args = build_parser().parse_args(["run", "--history-gc", "250"])
        assert args.history_gc == 250.0
        code = main(["run", "--protocol", "caesar", "--conflicts", "30",
                     "--clients", "2", "--duration", "1200", "--history-gc", "200"])
        assert code == 0
        output = capsys.readouterr().out
        assert "history GC:" in output
        assert "consistency violations: 0" in output

    def test_overload_json_output(self, capsys):
        code = main(["overload", "--offered", "120", "--duration", "400",
                     "--warmup-ms", "100", "--clients", "2", "--json"])
        assert code == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["config"]["protocol"] == "caesar"
        assert payload["summary"]["points"] == 1
        assert len(payload["points"]) == 1
        assert payload["points"][0]["offered_per_second"] == 120.0


class TestDeprecatedAlias:
    def test_caesar_repro_warns_then_delegates(self, capsys):
        from repro.cli import main_deprecated

        assert main_deprecated(["topology"]) == 0
        captured = capsys.readouterr()
        assert "deprecated" in captured.err
        assert "virginia" in captured.out
