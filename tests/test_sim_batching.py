"""Unit and integration tests for network message batching."""

from __future__ import annotations

import pytest

from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.figures import throughput_cost_model
from repro.sim.batching import BatchBuffer, BatchingConfig
from repro.sim.costs import CostModel
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.simulator import Simulator
from repro.sim.topology import uniform_topology


class TestBatchingConfig:
    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            BatchingConfig(window_ms=-1.0)
        with pytest.raises(ValueError):
            BatchingConfig(max_messages=0)
        with pytest.raises(ValueError):
            BatchingConfig(marginal_cost_factor=1.5)


class TestBatchBuffer:
    def test_add_and_drain(self):
        buffer = BatchBuffer(BatchingConfig(max_messages=3))
        assert not buffer.add(1, "a", 10)
        assert not buffer.add(1, "b", 10)
        assert buffer.has_pending(1)
        batch, size = buffer.drain(1)
        assert batch.messages == ("a", "b")
        assert size > 20
        assert not buffer.has_pending(1)

    def test_full_signal_at_max(self):
        buffer = BatchBuffer(BatchingConfig(max_messages=2))
        assert not buffer.add(1, "a", 10)
        assert buffer.add(1, "b", 10)

    def test_destinations_tracked_independently(self):
        buffer = BatchBuffer(BatchingConfig())
        buffer.add(1, "a", 10)
        buffer.add(2, "b", 10)
        assert set(buffer.destinations()) == {1, 2}
        buffer.drain(1)
        assert buffer.destinations() == [2]


class CountingNode(Node):
    """Node that counts every protocol message it handles."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.seen = []

    def handle_message(self, src: int, message: object) -> None:
        self.seen.append(message)


class TestNodeBatching:
    def build(self, window_ms=5.0, max_messages=10):
        sim = Simulator(seed=1)
        network = Network(sim, uniform_topology(2, rtt_ms=10.0))
        sender = CountingNode(0, sim, network)
        receiver = CountingNode(1, sim, network)
        sender.enable_batching(BatchingConfig(window_ms=window_ms, max_messages=max_messages))
        return sim, network, sender, receiver

    def test_messages_within_window_coalesce(self):
        sim, network, sender, receiver = self.build()
        for i in range(4):
            sender.send(1, f"m{i}")
        sim.run()
        # One wire message (the batch), four protocol messages handled.
        assert network.stats.per_type_sent.get("MessageBatch", 0) == 1
        assert receiver.seen == ["m0", "m1", "m2", "m3"]

    def test_batch_flushes_when_full(self):
        sim, network, sender, receiver = self.build(window_ms=1000.0, max_messages=2)
        sender.send(1, "a")
        sender.send(1, "b")
        sender.send(1, "c")
        sim.run(until=50.0)
        # The first two flushed immediately as a full batch; the third waits
        # for its window (1000 ms) and has not been delivered yet.
        assert receiver.seen == ["a", "b"]

    def test_self_messages_bypass_batching(self):
        sim, network, sender, _ = self.build(window_ms=1000.0)
        sender.send(0, "to-self")
        sim.run(until=10.0)
        assert sender.seen == ["to-self"]

    def test_flush_all_batches(self):
        sim, network, sender, receiver = self.build(window_ms=10000.0)
        sender.send(1, "late")
        sender.flush_all_batches()
        sim.run(until=50.0)
        assert receiver.seen == ["late"]

    def test_batched_cpu_cost_is_discounted(self):
        sim = Simulator(seed=1)
        network = Network(sim, uniform_topology(2, rtt_ms=10.0))
        cost_model = CostModel(default_cost_ms=1.0, self_message_factor=1.0)
        sender = CountingNode(0, sim, network, cost_model)
        receiver = CountingNode(1, sim, network, cost_model)
        sender.enable_batching(BatchingConfig(window_ms=5.0, max_messages=10,
                                              marginal_cost_factor=0.25))
        receiver.enable_batching(BatchingConfig(marginal_cost_factor=0.25))
        for i in range(4):
            sender.send(1, f"m{i}")
        sim.run()
        # 1 envelope at full cost + 4 messages at 0.25 => 2.0 ms, vs 4.0 unbatched.
        assert receiver.cpu_busy_ms == pytest.approx(2.0)


class TestBatchingEndToEnd:
    def test_caesar_correct_with_batching_enabled(self):
        result = run_experiment(ExperimentConfig(
            protocol="caesar", conflict_rate=0.2, clients_per_site=3, duration_ms=2000.0,
            warmup_ms=500.0, seed=8, batching=BatchingConfig(window_ms=2.0)))
        assert result.metrics.count > 0
        assert result.consistency_violations == 0

    def test_batching_improves_saturated_throughput(self):
        common = dict(protocol="caesar", conflict_rate=0.0, clients_per_site=40,
                      duration_ms=3000.0, warmup_ms=1000.0, seed=9,
                      cost_model=throughput_cost_model())
        without = run_experiment(ExperimentConfig(**common))
        with_batching = run_experiment(ExperimentConfig(
            batching=BatchingConfig(window_ms=2.0, marginal_cost_factor=0.25), **common))
        assert (with_batching.throughput_per_second
                > without.throughput_per_second * 1.1)
