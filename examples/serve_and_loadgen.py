#!/usr/bin/env python3
"""Serve mode through the ``repro.api`` facade: real processes, real TCP.

This example launches a three-replica CAESAR cluster on localhost — one OS
process per replica, speaking the registry's wire format over sockets —
drives it with seeded closed-loop clients, and prints the loadgen report
plus each replica's stats snapshot.  It is the programmatic equivalent of::

    repro loadgen --launch 3 --protocol caesar --clients 3 --commands 10

Run it with::

    python examples/serve_and_loadgen.py
"""

from __future__ import annotations

from repro import api


def main() -> None:
    config = api.ServeConfig(protocol="caesar", replicas=3, seed=11)
    with api.serve_cluster(config) as cluster:
        print(f"{config.protocol} cluster up:")
        for node_id, (host, port) in sorted(cluster.peers.items()):
            print(f"  replica {node_id} on {host}:{port}")

        report = api.run_loadgen(api.LoadgenConfig(
            endpoints=cluster.peers, clients=3, commands_per_client=10,
            conflict_rate=0.1, seed=11))

        print(f"\ncompleted {report.completed}/{report.submitted} commands "
              f"in {report.wall_seconds:.1f}s "
              f"({report.throughput_per_second:.1f}/s)")
        if report.mean_latency_ms is not None:
            print(f"latency: mean {report.mean_latency_ms:.2f} ms, "
                  f"p99 {report.p99_latency_ms:.2f} ms")
        for node_id, stats in sorted(report.per_replica.items()):
            print(f"replica {node_id}: executed {stats['commands_executed']}, "
                  f"handled {stats['messages_handled']} messages")
        print("result:", "ok" if report.ok else "FAILED " + "; ".join(report.failures))


if __name__ == "__main__":
    main()
