#!/usr/bin/env python3
"""Geo-replicated key-value store under a realistic conflicting workload.

This example reproduces, at small scale, the scenario the paper's
introduction motivates: a geo-replicated service where clients at five sites
issue update commands, some of which touch shared (conflicting) keys.  It
runs the same workload against CAESAR and EPaxos and prints the per-site
average latency and the fraction of commands that needed a slow decision —
the comparison at the heart of the paper.

Run it with::

    python examples/geo_replicated_store.py [conflict_percent]
"""

from __future__ import annotations

import sys

from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.report import format_series
from repro.sim.topology import EC2_SHORT_LABELS, EC2_SITES


def main() -> None:
    conflict_percent = float(sys.argv[1]) if len(sys.argv) > 1 else 30.0
    conflict_rate = conflict_percent / 100.0

    latency_series = {}
    slow_ratio = {}
    for protocol in ("caesar", "epaxos"):
        print(f"running {protocol} with {conflict_percent:.0f}% conflicting commands ...")
        result = run_experiment(ExperimentConfig(
            protocol=protocol, conflict_rate=conflict_rate, clients_per_site=10,
            duration_ms=8000.0, warmup_ms=2000.0, seed=21))
        latency_series[protocol] = {
            EC2_SHORT_LABELS[site]: result.site_mean_latency(site) for site in EC2_SITES}
        slow_ratio[protocol] = result.slow_path_ratio or 0.0
        assert result.consistency_violations == 0

    print()
    print(format_series(
        f"Mean latency (ms) per site at {conflict_percent:.0f}% conflicts",
        latency_series, x_label="site"))
    print()
    for protocol, ratio in slow_ratio.items():
        print(f"{protocol:>8}: {ratio * 100.0:5.1f}% of commands needed a slow decision")
    print()
    print("CAESAR keeps (almost) every decision on the fast path by agreeing on a")
    print("delivery timestamp instead of on identical dependency sets; EPaxos falls")
    print("back to its slow path whenever a quorum disagrees on dependencies.")


if __name__ == "__main__":
    main()
