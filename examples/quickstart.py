#!/usr/bin/env python3
"""Quickstart: run a five-site CAESAR cluster and order a handful of commands.

This example builds the paper's geo-replicated deployment (Virginia, Ohio,
Frankfurt, Ireland, Mumbai), submits a few conflicting and non-conflicting
key-value updates from different sites, and prints what happened: per-command
latency, fast vs. slow decisions, and proof that every replica executed the
conflicting commands in the same order.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.consensus.command import Command
from repro.harness.cluster import ClusterConfig, build_cluster
from repro.sim.topology import EC2_SITES


def main() -> None:
    # 1. Build a CAESAR cluster on the paper's five EC2 sites.
    cluster = build_cluster(ClusterConfig(protocol="caesar", seed=7))
    cluster.start()
    print(cluster.topology.describe())
    print()

    # 2. Submit commands: every site writes its own key (no conflicts), and
    #    every site also writes the single shared key "inventory" (conflicts).
    results = {}
    commands = []
    for node_id, site in enumerate(EC2_SITES):
        private = Command(command_id=(node_id, 0), key=f"balance-{site}", operation="put",
                          value=f"{100 + node_id}", origin=node_id)
        shared = Command(command_id=(node_id, 1), key="inventory", operation="put",
                         value=f"update-from-{site}", origin=node_id)
        for command in (private, shared):
            commands.append(command)
            cluster.replica(node_id).submit(
                command, callback=lambda res, c=command: results.setdefault(c.command_id, res))

    # 3. Run the simulation until every command is executed everywhere.
    cluster.sim.run_until(
        lambda: cluster.all_executed([c.command_id for c in commands]), deadline=60000)

    # 4. Report latencies and decision kinds per command.
    print(f"{'command':<28} {'origin':<10} {'kind':<6} latency")
    for command in commands:
        replica = cluster.replica(command.origin)
        decision = replica.decisions[command.command_id]
        print(f"{str(command):<28} {EC2_SITES[command.origin]:<10} "
              f"{decision.kind.value:<6} {decision.latency_ms:6.1f} ms")

    # 5. Check the Generalized Consensus guarantees.
    violations = cluster.check_consistency()
    print()
    print(f"replicas executed {cluster.total_executed()} commands in total")
    print(f"conflicting-order violations across replicas: {len(violations)}")
    final_inventory = {site: cluster.replica_at(site).state_machine.get("inventory")
                       for site in EC2_SITES}
    assert len(set(final_inventory.values())) == 1, "replicas diverged!"
    print(f"all replicas agree on the final value of 'inventory': "
          f"{final_inventory['virginia']!r}")


if __name__ == "__main__":
    main()
