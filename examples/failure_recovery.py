#!/usr/bin/env python3
"""Failure and recovery: what happens when a replica crashes mid-run.

This example reproduces the scenario of the paper's Figure 12 at small scale:
closed-loop clients drive a five-site CAESAR cluster, one replica is killed
partway through, its clients time out and reconnect to the surviving
replicas, and CAESAR's per-command recovery finalizes the commands the dead
leader left behind.  The script prints a per-second throughput timeline so
the dip and the recovery are visible, plus the recovery statistics.

Run it with::

    python examples/failure_recovery.py
"""

from __future__ import annotations

from repro.harness.experiment import ExperimentConfig, attach_clients, build_experiment_cluster
from repro.metrics.collector import MetricsCollector
from repro.sim.failures import ScheduledCrash

CRASH_AT_MS = 8000.0
TOTAL_MS = 20000.0
CRASHED_SITE = "mumbai"


def main() -> None:
    config = ExperimentConfig(protocol="caesar", conflict_rate=0.02, clients_per_site=10,
                              duration_ms=TOTAL_MS, warmup_ms=0.0, seed=33, recovery=True)
    cluster = build_experiment_cluster(config)
    metrics = MetricsCollector(warmup_ms=0.0)
    pool = attach_clients(cluster, config, metrics)

    crashed_node = cluster.topology.index_of(CRASHED_SITE)
    for client in pool.clients:
        client.reconnect_timeout_ms = 2000.0
        client.fallback_replicas = [replica for replica in cluster.replicas
                                    if replica.node_id != client.replica.node_id]
    cluster.crash_injector.schedule(ScheduledCrash(node_id=crashed_node,
                                                   crash_at_ms=CRASH_AT_MS))

    cluster.start()
    pool.start_all()
    cluster.run(TOTAL_MS)
    pool.stop_all()
    cluster.run(1000.0)

    print(f"CAESAR, 50 closed-loop clients, crash of {CRASHED_SITE} at "
          f"t={CRASH_AT_MS / 1000:.0f}s\n")
    print("time  throughput (commands/second)")
    for start, rate in metrics.timeline(bucket_ms=1000.0, end_ms=TOTAL_MS - 1):
        marker = "  <- crash" if start == CRASH_AT_MS else ""
        print(f"{start / 1000.0:3.0f}s  {rate:7.1f} {'#' * int(rate / 20)}{marker}")

    live = [replica for replica in cluster.replicas if not replica.crashed]
    recoveries = sum(replica.stats.recoveries_started for replica in live)
    reconnects = sum(client.timeouts for client in pool.clients)
    print()
    print(f"recovery attempts started by surviving replicas: {recoveries}")
    print(f"clients that timed out and reconnected:          {reconnects}")
    print(f"consistency violations across survivors:         {len(cluster.check_consistency())}")
    print()
    print("Throughput dips while the crashed site's clients are stalled, then")
    print("returns once they reconnect; commands left pending by the crashed")
    print("leader are finalized by the surviving replicas' RECOVERY phase.")


if __name__ == "__main__":
    main()
