#!/usr/bin/env python3
"""Compare all five protocols on the same geo-replicated workload.

Runs CAESAR, EPaxos, M2Paxos, Mencius and Multi-Paxos (leader in Ireland) on
identical workloads at a few conflict rates, and prints a latency table and a
peak-throughput table — a miniature version of the paper's Figures 6, 7 and 9
in one script.

Run it with::

    python examples/protocol_comparison.py
"""

from __future__ import annotations

from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.figures import throughput_cost_model
from repro.harness.report import format_series
from repro.sim.topology import EC2_SITES

CONFLICT_RATES = (0.0, 0.10, 0.30)
PROTOCOLS = {
    "caesar": {},
    "epaxos": {},
    "m2paxos": {},
    "mencius": {},
    "multipaxos-IR": {"leader_id": EC2_SITES.index("ireland")},
}


def protocol_name(label: str) -> str:
    return label.split("-")[0]


def main() -> None:
    latency = {label: {} for label in PROTOCOLS}
    throughput = {label: {} for label in PROTOCOLS}

    for label, options in PROTOCOLS.items():
        for rate in CONFLICT_RATES:
            print(f"running {label} at {int(rate * 100)}% conflicts ...")
            latency_result = run_experiment(ExperimentConfig(
                protocol=protocol_name(label), conflict_rate=rate, clients_per_site=10,
                duration_ms=6000.0, warmup_ms=1500.0, seed=42,
                protocol_options=dict(options)))
            throughput_result = run_experiment(ExperimentConfig(
                protocol=protocol_name(label), conflict_rate=rate, clients_per_site=40,
                duration_ms=4000.0, warmup_ms=1000.0, seed=43,
                cost_model=throughput_cost_model(), protocol_options=dict(options)))
            key = f"{int(rate * 100)}%"
            overall = latency_result.overall_latency
            latency[label][key] = overall.mean if overall else None
            throughput[label][key] = throughput_result.throughput_per_second
            assert latency_result.consistency_violations == 0
            assert throughput_result.consistency_violations == 0

    print()
    print(format_series("Mean latency (ms) across all sites", latency, x_label="conflict"))
    print()
    print(format_series("Peak throughput (commands/second, scaled CPU model)", throughput,
                        x_label="conflict"))
    print()
    print("Expected shape (matching the paper): the multi-leader protocols beat the")
    print("single leader; CAESAR's latency stays flat as conflicts grow while the")
    print("dependency/ownership-based protocols degrade; Multi-Paxos throughput is")
    print("capped by its leader regardless of the conflict rate.")


if __name__ == "__main__":
    main()
