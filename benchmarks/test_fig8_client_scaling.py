"""Figure 8: latency per site while growing the number of connected clients.

Paper reference: with 10% conflicts, CAESAR's latency stays steady as clients
are added and it saturates latest; EPaxos' execution (dependency-graph
analysis) slows it down as load grows; M2Paxos stops scaling earlier because
of its forwarding mechanism.
"""

from __future__ import annotations

import pytest

from repro.harness.figures import figure8_client_scaling

from bench_utils import run_once

CLIENT_COUNTS = (5, 50, 250, 500)


@pytest.mark.benchmark(group="figure8")
def test_figure8_client_scaling(benchmark, save_result):
    result = run_once(benchmark, figure8_client_scaling,
                      client_counts=CLIENT_COUNTS,
                      protocols=("caesar", "epaxos", "m2paxos"),
                      duration_ms=4000.0, warmup_ms=1500.0)
    save_result("figure8_client_scaling", result.table)

    caesar = result.series["caesar"]
    epaxos = result.series["epaxos"]
    m2paxos = result.series["m2paxos"]

    # Latency grows with load for every system once the CPU model saturates.
    assert caesar[500] >= caesar[5] * 0.9
    assert epaxos[500] >= epaxos[5] * 0.9
    assert m2paxos[500] >= m2paxos[5] * 0.9
    # At light load every protocol is within the WAN round-trip regime (< 400 ms).
    for series in (caesar, epaxos, m2paxos):
        assert series[5] < 400.0
