"""Figure 11: CAESAR's internal latency breakdown and wait-condition times.

Paper reference: (a) with no conflicts almost all latency is the proposal
phase and delivery is negligible; as conflicts grow, delivery becomes a major
share because stable commands wait for their conflicting predecessors.
(b) The average wait-condition time grows with the conflict percentage, and
far-away sites (which propose with lower timestamps) wait the most.
"""

from __future__ import annotations

import pytest

from repro.harness.figures import figure11_breakdown

from bench_utils import run_once

CONFLICT_RATES = (0.0, 0.02, 0.10, 0.30, 0.50)


@pytest.mark.benchmark(group="figure11")
def test_figure11_breakdown_and_wait_times(benchmark, save_result):
    result = run_once(benchmark, figure11_breakdown,
                      conflict_rates=CONFLICT_RATES, clients_per_site=10,
                      duration_ms=5000.0, warmup_ms=1500.0)
    save_result("figure11_breakdown", result.table)

    propose = result.series["propose"]
    deliver = result.series["deliver"]
    retry = result.series["retry"]
    wait_times = result.extra["wait_times"]

    # Proportions are well-formed at every conflict rate.
    for label in propose:
        total = propose[label] + deliver[label] + retry[label]
        assert total == pytest.approx(1.0, abs=1e-6)
    # With no conflicts the proposal phase dominates and delivery is negligible.
    assert propose["0%"] > 0.8
    assert deliver["0%"] < 0.2
    # Under conflicts, delivery takes a visibly larger share than at 0%.
    assert deliver["50%"] > deliver["0%"]
    # Wait-condition time grows with the conflict rate (averaged over sites).
    def mean_wait(label: str) -> float:
        return sum(values[label] for values in wait_times.values()) / len(wait_times)

    assert mean_wait("30%") >= mean_wait("2%")
