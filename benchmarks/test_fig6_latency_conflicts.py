"""Figure 6: average latency per site vs. conflict percentage.

Paper reference: CAESAR's latency stays nearly constant from 0% to 50%
conflicts while EPaxos and M2Paxos degrade; at 0% CAESAR is ~18% slower than
EPaxos (one extra fast-quorum node) and ~50% slower from Mumbai.
"""

from __future__ import annotations

import pytest

from repro.harness.figures import PAPER_CONFLICT_RATES, figure6_latency_vs_conflicts

from bench_utils import run_once


@pytest.mark.benchmark(group="figure6")
def test_figure6_latency_vs_conflicts(benchmark, save_result):
    result = run_once(benchmark, figure6_latency_vs_conflicts,
                      conflict_rates=PAPER_CONFLICT_RATES,
                      protocols=("caesar", "epaxos", "m2paxos"),
                      clients_per_site=10, duration_ms=5000.0, warmup_ms=1500.0)
    save_result("figure6_latency_vs_conflicts", result.table)

    caesar = result.series["caesar"]
    epaxos = result.series["epaxos"]
    m2paxos = result.series["m2paxos"]

    # CAESAR pays one extra quorum node at 0% conflicts (paper: ~18% slower).
    assert caesar["0%"] > epaxos["0%"]
    # CAESAR's latency stays nearly flat up to 50% conflicts (paper's headline).
    assert caesar["50%"] <= caesar["0%"] * 1.35
    # M2Paxos degrades with conflicts because of ownership forwarding.
    assert m2paxos["30%"] > m2paxos["0%"] * 1.15
    # Every protocol suffers under total order (100% conflicts).
    assert caesar["100%"] >= caesar["0%"]
    assert epaxos["100%"] >= epaxos["0%"]
