"""Helpers shared by the benchmark modules."""

from __future__ import annotations

import pathlib

from repro.metrics.perf import measure, write_record

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def run_once(benchmark, fn, *args, perf_name=None, perf_series=None, perf_extra=None,
             **kwargs):
    """Run a figure driver exactly once under pytest-benchmark timing.

    The drivers are full experiments (tens of simulated seconds each), so a
    single round is the right granularity; pytest-benchmark still reports the
    wall-clock cost of regenerating the figure.

    Besides the human-oriented pytest-benchmark numbers, the run also writes
    a machine-readable ``BENCH_<name>.json`` perf record (wall seconds,
    simulator events executed, events/second, and the figure's series) under
    ``benchmarks/results/``, so the simulator's performance trajectory stays
    comparable across PRs.

    Args:
        perf_name: overrides the record name (defaults to ``fn.__name__``);
            also forces a record for drivers that return no figure series.
        perf_series: optional ``result -> series-dict`` extractor for drivers
            that return something other than a single FigureResult (e.g. a
            tuple of series), so their records still carry the figure data.
        perf_extra: optional ``result -> dict`` extractor merged into the
            record's ``extra`` field (e.g. sweep timing detail).
    """
    name = perf_name or fn.__name__
    captured = {}

    def measured(*f_args, **f_kwargs):
        result, captured["record"] = measure(name, fn, *f_args, **f_kwargs)
        return result

    result = benchmark.pedantic(measured, args=args, kwargs=kwargs, rounds=1, iterations=1)
    record = captured.get("record")
    if record is not None:
        series = perf_series(result) if perf_series is not None else getattr(result, "series", None)
        if series is not None:
            record.series = {label: {str(k): v for k, v in points.items()}
                             for label, points in series.items()}
        if perf_extra is not None:
            record.extra.update(perf_extra(result))
        if series is not None or perf_name is not None:
            # Only figure drivers (or explicitly named measurements) get a
            # persistent record; helper-level calls stay out of results/.
            write_record(record, RESULTS_DIR)
    return result
