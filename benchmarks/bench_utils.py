"""Helpers shared by the benchmark modules."""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run a figure driver exactly once under pytest-benchmark timing.

    The drivers are full experiments (tens of simulated seconds each), so a
    single round is the right granularity; pytest-benchmark still reports the
    wall-clock cost of regenerating the figure.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
