"""Ablation: CAESAR with and without the wait condition.

The wait condition is the paper's key mechanism (Section IV-A): without it,
an acceptor that received a conflicting higher-timestamp command first must
reject the proposal, which turns fast decisions into slow ones exactly the
way EPaxos' equal-dependency rule does.  The
:func:`repro.harness.figures.ablation_wait_condition` sweep disables the
wait condition (the acceptor NACKs immediately instead of parking the
proposal) and measures the effect on the slow-path share and on latency.
"""

from __future__ import annotations

import pytest

from repro.harness.figures import ablation_wait_condition

from bench_utils import run_once

CONFLICT_RATES = (0.10, 0.30, 0.50)


@pytest.mark.benchmark(group="ablation")
def test_wait_condition_ablation(benchmark, save_result):
    result = run_once(benchmark, ablation_wait_condition,
                      perf_name="ablation_wait_condition",
                      conflict_rates=CONFLICT_RATES, clients_per_site=20,
                      duration_ms=4000.0, warmup_ms=1000.0)
    save_result("ablation_wait_condition", result.table)

    slow_series = result.extra["slow"]
    assert result.extra["consistency_violations"] == 0

    # Disabling the wait condition produces (weakly) more slow decisions at
    # every conflict rate, and strictly more under heavy conflicts.
    for key in slow_series["wait-on"]:
        assert slow_series["wait-off"][key] >= slow_series["wait-on"][key]
    assert slow_series["wait-off"]["50%"] > slow_series["wait-on"]["50%"]
