"""Ablation: CAESAR with and without the wait condition.

The wait condition is the paper's key mechanism (Section IV-A): without it,
an acceptor that received a conflicting higher-timestamp command first must
reject the proposal, which turns fast decisions into slow ones exactly the
way EPaxos' equal-dependency rule does.  This ablation disables the wait
condition (the acceptor NACKs immediately instead of parking the proposal)
and measures the effect on the slow-path share and on latency.
"""

from __future__ import annotations

import pytest

from repro.core.config import CaesarConfig
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.report import format_series

from bench_utils import run_once

CONFLICT_RATES = (0.10, 0.30, 0.50)


def run_ablation(conflict_rates=CONFLICT_RATES, clients_per_site=20,
                 duration_ms=4000.0, warmup_ms=1000.0):
    """Run CAESAR with the wait condition on and off; return slow-% and latency series."""
    slow_series = {"wait-on": {}, "wait-off": {}}
    latency_series = {"wait-on": {}, "wait-off": {}}
    for enabled, label in ((True, "wait-on"), (False, "wait-off")):
        for rate in conflict_rates:
            config = CaesarConfig(recovery_enabled=False, wait_condition_enabled=enabled)
            result = run_experiment(ExperimentConfig(
                protocol="caesar", conflict_rate=rate, clients_per_site=clients_per_site,
                duration_ms=duration_ms, warmup_ms=warmup_ms, seed=19,
                protocol_options={"config": config}))
            key = f"{int(rate * 100)}%"
            ratio = result.slow_path_ratio or 0.0
            slow_series[label][key] = ratio * 100.0
            overall = result.overall_latency
            latency_series[label][key] = overall.mean if overall else None
            assert result.consistency_violations == 0
    return slow_series, latency_series


@pytest.mark.benchmark(group="ablation")
def test_wait_condition_ablation(benchmark, save_result):
    slow_series, latency_series = run_once(
        benchmark, run_ablation, perf_name="ablation_wait_condition",
        perf_series=lambda r: {
            **{f"slow% {label}": points for label, points in r[0].items()},
            **{f"latency {label}": points for label, points in r[1].items()},
        })
    table = (format_series("Ablation — % slow decisions, wait condition on vs off",
                           slow_series, "conflict")
             + "\n\n"
             + format_series("Ablation — mean latency (ms), wait condition on vs off",
                             latency_series, "conflict"))
    save_result("ablation_wait_condition", table)

    # Disabling the wait condition produces (weakly) more slow decisions at
    # every conflict rate, and strictly more under heavy conflicts.
    for key in slow_series["wait-on"]:
        assert slow_series["wait-off"][key] >= slow_series["wait-on"][key]
    assert slow_series["wait-off"]["50%"] > slow_series["wait-on"]["50%"]
