"""Figure 9 (batching disabled): peak throughput vs. conflict percentage.

Paper reference: the multi-leader protocols far exceed single-leader
Multi-Paxos; EPaxos loses more throughput than CAESAR as conflicts grow (24%
vs 17% already at 10% in the paper), so a crossover in CAESAR's favour
appears at moderate conflict rates; Multi-Paxos and Mencius are oblivious to
the conflict rate.
"""

from __future__ import annotations

import pytest

from repro.harness.figures import figure9_throughput

from bench_utils import run_once

CONFLICT_RATES = (0.0, 0.02, 0.10, 0.30, 0.50)


@pytest.mark.benchmark(group="figure9")
def test_figure9_throughput(benchmark, save_result):
    result = run_once(benchmark, figure9_throughput,
                      conflict_rates=CONFLICT_RATES,
                      protocols=("caesar", "epaxos", "m2paxos", "multipaxos", "mencius"),
                      clients_per_site=60, duration_ms=4000.0, warmup_ms=1500.0)
    save_result("figure9_throughput", result.table)

    caesar = result.series["caesar"]
    epaxos = result.series["epaxos"]
    multipaxos = result.series["multipaxos"]
    mencius = result.series["mencius"]

    # The single designated leader is the throughput bottleneck (paper Figure 9).
    assert multipaxos["0%"] < caesar["0%"]
    assert multipaxos["0%"] < epaxos["0%"]
    # Multi-Paxos and Mencius are conflict-oblivious: identical numbers everywhere.
    assert len(set(multipaxos.values())) == 1
    assert len(set(mencius.values())) == 1
    # EPaxos loses more of its 0%-throughput than CAESAR by 30% conflicts.
    caesar_retention = caesar["30%"] / caesar["0%"]
    epaxos_retention = epaxos["30%"] / epaxos["0%"]
    assert caesar_retention > epaxos_retention
