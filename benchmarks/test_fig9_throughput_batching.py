"""Figure 9 (bottom): peak throughput vs. conflict percentage, batching enabled.

Paper reference: with network batching every protocol's absolute throughput
rises substantially (CAESAR exceeds 320k commands/second on the authors'
hardware); the relative trend with conflicts matches the no-batching case
except that EPaxos catches back up at very high conflict rates because it
does not pay CAESAR's wait condition.  Mencius is omitted, as in the paper,
because the authors' Mencius implementation does not support batching.
"""

from __future__ import annotations

import pytest

from repro.harness.figures import figure9_throughput_batching
from repro.sim.batching import BatchingConfig

from bench_utils import run_once

CONFLICT_RATES = (0.0, 0.10, 0.30)


@pytest.mark.benchmark(group="figure9")
def test_figure9_throughput_with_batching(benchmark, save_result):
    batching = BatchingConfig(window_ms=2.0, max_messages=32, marginal_cost_factor=0.25)
    result = run_once(benchmark, figure9_throughput_batching,
                      perf_name="figure9_throughput_batching",
                      conflict_rates=CONFLICT_RATES,
                      protocols=("caesar", "epaxos", "multipaxos"),
                      clients_per_site=60, duration_ms=4000.0,
                      warmup_ms=1500.0, batching=batching)
    save_result("figure9_throughput_batching", result.table)

    without = result.extra["without"]
    with_batching = result.extra["with_batching"]

    # Batching raises every protocol's peak throughput (paper: ~an order of
    # magnitude on real hardware; the simulated CPU model is more modest).
    for protocol in ("caesar", "epaxos", "multipaxos"):
        assert (with_batching.series[protocol]["0%"]
                > without.series[protocol]["0%"] * 1.2), protocol
    # The multi-leader protocols still beat the single leader with batching on.
    assert (with_batching.series["caesar"]["10%"]
            > with_batching.series["multipaxos"]["10%"])
