"""Protocol micro-benchmarks backing the quantities quoted in Section V-VI.

These check the analytic properties the paper states rather than a plotted
figure: quorum sizes for the five-node deployment, the two-communication-delay
fast decision, the four-delay slow decision, and the relative cost of the
protocols' message footprints.
"""

from __future__ import annotations

import pytest

from repro.consensus.command import Command
from repro.consensus.quorums import QuorumSystem, epaxos_fast_quorum_size
from repro.core.config import CaesarConfig
from repro.harness.cluster import ClusterConfig, build_cluster
from repro.sim.network import NetworkConfig
from repro.sim.topology import ec2_five_sites

from bench_utils import run_once


def order_single_command(protocol: str, origin: int = 0, **options):
    """Build a cluster, order one command from ``origin``, return (latency, cluster).

    Wire accounting is enabled so the cluster also reports codec-measured
    bytes for every message it sent (virtual-time behavior is unaffected).
    """
    cluster = build_cluster(ClusterConfig(protocol=protocol, seed=5,
                                          network=NetworkConfig(wire_accounting=True),
                                          protocol_options=options))
    command = Command(command_id=(origin, 0), key="bench", operation="put", value="v",
                      origin=origin)
    cluster.replica(origin).submit(command)
    # check_every=1: stop on the exact event so message counts stay comparable.
    cluster.run_until_executed([command.command_id], deadline_ms=30000, check_every=1)
    latency = cluster.replica(origin).decisions[command.command_id].latency_ms
    return latency, cluster


@pytest.mark.benchmark(group="micro")
def test_quorum_sizes_for_paper_deployment(benchmark):
    quorums = run_once(benchmark, QuorumSystem.for_cluster, 5)
    assert (quorums.classic, quorums.fast, quorums.f) == (3, 4, 2)
    assert epaxos_fast_quorum_size(5) == 3


@pytest.mark.benchmark(group="micro")
def test_caesar_fast_decision_is_two_delays(benchmark):
    """A CAESAR fast decision costs one round trip to the fast quorum (2 delays)."""
    latency, _ = run_once(benchmark, order_single_command, "caesar")
    topology = ec2_five_sites()
    assert latency == pytest.approx(topology.quorum_latency(0, 4), rel=0.2)


@pytest.mark.benchmark(group="micro")
def test_caesar_slow_decision_is_four_delays(benchmark):
    """With the wait condition disabled, a rejected command needs two more delays."""

    def run():
        cluster = build_cluster(ClusterConfig(
            protocol="caesar", seed=6,
            protocol_options={"config": CaesarConfig(recovery_enabled=False,
                                                     wait_condition_enabled=False)}))
        # Two conflicting commands proposed simultaneously from the two farthest
        # sites force at least one of them onto the retry path.
        first = Command(command_id=(0, 0), key="hot", operation="put", value="a", origin=0)
        second = Command(command_id=(4, 0), key="hot", operation="put", value="b", origin=4)
        cluster.replica(0).submit(first)
        cluster.replica(4).submit(second)
        cluster.run_until_executed([first.command_id, second.command_id],
                                   deadline_ms=30000)
        return cluster

    cluster = run_once(benchmark, run)
    slow = sum(r.stats.slow_decisions for r in cluster.replicas)
    fast = sum(r.stats.fast_decisions for r in cluster.replicas)
    assert slow + fast == 2
    retries = sum(r.stats.retries for r in cluster.replicas)
    if slow:
        assert retries >= 1


@pytest.mark.benchmark(group="micro")
def test_epaxos_fast_path_cheaper_quorum_than_caesar(benchmark):
    """EPaxos contacts one node fewer, so its unloaded fast path is faster."""
    caesar_latency, _ = order_single_command("caesar")
    epaxos_latency, _ = run_once(benchmark, order_single_command, "epaxos")
    assert epaxos_latency < caesar_latency


@pytest.mark.benchmark(group="micro")
def test_message_footprint_per_command(benchmark, save_result):
    """Messages and codec-measured bytes to order a single command, per protocol.

    Byte counts come from the runtime registry's codec (the canonical wire
    encoding of every message actually sent), not from per-protocol size
    estimates.  The per-protocol bytes-per-decision land in the BENCH record
    and are regression-gated by ``compare_perf.py --max-bytes-growth``.
    """

    def footprint():
        counts = {}
        for protocol in ("caesar", "epaxos", "multipaxos", "mencius", "m2paxos"):
            _, cluster = order_single_command(protocol)
            stats = cluster.network.stats
            counts[protocol] = (stats.messages_sent, stats.codec_bytes_sent)
        return counts

    counts = run_once(
        benchmark, footprint, perf_name="micro_message_footprint",
        perf_extra=lambda result: {
            "codec_bytes_per_decision": {name: result[name][1] for name in result}})
    table = "\n".join(
        f"{name:>12}: {messages:3d} messages, {wire_bytes:5d} wire bytes for one command"
        for name, (messages, wire_bytes) in sorted(counts.items()))
    save_result("micro_message_footprint", table)
    messages = {name: pair[0] for name, pair in counts.items()}
    wire_bytes = {name: pair[1] for name, pair in counts.items()}
    # Multi-leader quorum protocols broadcast to everyone: at least 3N messages.
    assert messages["caesar"] >= 15
    # Multi-Paxos concentrates messages on the leader but still commits to all.
    assert messages["multipaxos"] >= 9
    # Every sent message was measured through the codec.
    assert all(size > 0 for size in wire_bytes.values())
