"""Sweep orchestrator benchmark: serial vs. 4-worker figure-9 grid.

Runs the Figure 9 throughput grid twice through
:mod:`repro.harness.sweep` — once serially, once across 4 worker processes —
and records both wall times plus the resulting speedup in
``BENCH_sweep_orchestrator.json``.  The determinism contract is asserted
unconditionally: the parallel run must reproduce the serial run's series,
tables and event counts bit-for-bit.

The wall-time speedup is hardware-dependent: 4 workers only beat serial
when there are cores for them (GitHub's standard runners have 4 vCPUs; the
recorded ``timing.cpus`` says what the committed record was measured on), so
the ≥2x assertion is gated on the visible CPU count.
"""

from __future__ import annotations

import os

import pytest

from repro.harness.figures import figure9_throughput

from bench_utils import run_once

GRID = dict(conflict_rates=(0.0, 0.10, 0.30),
            protocols=("caesar", "epaxos", "m2paxos", "multipaxos", "mencius"),
            clients_per_site=30, duration_ms=2500.0, warmup_ms=1000.0)

WORKERS = 4


def _run_serial_then_parallel():
    serial = figure9_throughput(serial=True, **GRID)
    parallel = figure9_throughput(workers=WORKERS, **GRID)
    return serial, parallel


def _timing(result) -> dict:
    serial, parallel = result
    serial_wall = serial.extra["sweep"].wall_seconds
    parallel_wall = parallel.extra["sweep"].wall_seconds
    return {"timing": {
        "workers": WORKERS,
        "cpus": os.cpu_count(),
        "serial_wall_seconds": round(serial_wall, 3),
        "parallel_wall_seconds": round(parallel_wall, 3),
        "parallel_speedup": round(serial_wall / parallel_wall, 2),
    }}


@pytest.mark.benchmark(group="sweep")
def test_sweep_parallel_matches_serial_and_records_speedup(benchmark, save_result):
    serial, parallel = run_once(
        benchmark, _run_serial_then_parallel, perf_name="sweep_orchestrator",
        perf_series=lambda r: r[1].series, perf_extra=_timing)
    save_result("sweep_orchestrator", parallel.table)

    # The determinism contract: fanning the grid out across processes must
    # not change a single byte of the figure output.
    assert parallel.series == serial.series
    assert parallel.table == serial.table
    assert (parallel.extra["sweep"].events_executed
            == serial.extra["sweep"].events_executed)
    assert parallel.extra["sweep"].workers == WORKERS

    # The wall-time payoff needs actual cores.  The recorded
    # timing.parallel_speedup is the number to read (>= 2x expected on an
    # unloaded 4-core machine); the assertion keeps a margin below that so a
    # noisy neighbour on a shared 4-vCPU runner doesn't flake the build while
    # still failing loudly if parallelism stops paying at all.
    if (os.cpu_count() or 1) >= 4:
        timing = _timing((serial, parallel))["timing"]
        assert timing["parallel_speedup"] >= 1.5, timing
