"""Figure 10: percentage of commands decided via the slow path.

Paper reference: EPaxos' slow-path share tracks the conflict percentage,
while CAESAR's grows far more slowly — more than 3x (up to 70%) fewer slow
decisions at 30% conflicts — thanks to the wait condition, which only rejects
a proposal when its timestamp is genuinely invalid.
"""

from __future__ import annotations

import pytest

from repro.harness.figures import figure10_slow_paths

from bench_utils import run_once

CONFLICT_RATES = (0.0, 0.02, 0.10, 0.30, 0.50)


@pytest.mark.benchmark(group="figure10")
def test_figure10_slow_paths(benchmark, save_result):
    result = run_once(benchmark, figure10_slow_paths,
                      conflict_rates=CONFLICT_RATES, clients_per_site=25,
                      duration_ms=4000.0, warmup_ms=1000.0)
    save_result("figure10_slow_paths", result.table)

    caesar = result.series["caesar"]
    epaxos = result.series["epaxos"]

    # No conflicts: neither protocol needs the slow path.
    assert epaxos["0%"] <= 1.0
    assert caesar["0%"] <= 1.0
    # EPaxos' slow-path share grows with the conflict rate.
    assert epaxos["50%"] > epaxos["10%"] >= epaxos["0%"]
    # CAESAR takes several times fewer slow decisions at moderate conflict rates.
    assert caesar["30%"] <= epaxos["30%"] / 2.0
    assert caesar["50%"] <= epaxos["50%"] / 2.0
