"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper.  Besides being
timed by pytest-benchmark, each benchmark writes its result table to
``benchmarks/results/<name>.txt`` so the numbers quoted in ``EXPERIMENTS.md``
can be re-checked after a run.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def save_result():
    """Persist a figure's text table under ``benchmarks/results/``."""

    def _save(name: str, table: str) -> None:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(table + "\n")
        print(f"\n{table}\n[saved to {path}]")

    return _save

