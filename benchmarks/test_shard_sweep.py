"""Sharded-keyspace benchmark: shard scaling under zipfian skew.

Runs the ``shard_scaling`` study grid (protocol x skew x shard count, each
cell a full sharded run over generator-built WAN groups) and records it as
``BENCH_shard_scaling.json``, so the sharding layer's performance trajectory
is gated by ``benchmarks/compare_perf.py`` like every other figure sweep.

The correctness contract is asserted unconditionally: every submitted
command decides with zero conflict-order violations, and running the same
study serially must reproduce the swept tables bit-for-bit.
"""

from __future__ import annotations

import pytest

from repro.harness.figures import shard_scaling

from bench_utils import run_once

GRID = dict(protocols=("caesar",), shard_counts=(1, 2, 4), skews=(0.0, 0.99),
            sites=10, replicas_per_site=2, clients=8, commands_per_client=4,
            key_space=200, hot_keys=8, seed=23)


def _run_grid():
    return shard_scaling(serial=True, **GRID)


@pytest.mark.benchmark(group="shard")
def test_shard_scaling_grid_decides_and_records(benchmark, save_result):
    result = run_once(benchmark, _run_grid, perf_name="shard_scaling")
    save_result("shard_scaling", result.table)

    assert result.extra["total_violations"] == 0
    assert result.extra["total_undecided"] == 0
    # Aggregate throughput must be reported for every grid point.
    for points in result.series.values():
        assert all(value is not None and value > 0 for value in points.values())
    # Per-shard conflict rates are reported at the widest shard count.
    assert result.extra["per_shard_conflicts"]

    # Determinism: the identical grid reproduces the identical tables.
    again = shard_scaling(serial=True, **GRID)
    assert again.table == result.table
    assert again.series == result.series
