"""Figure 7: Multi-Paxos (near/far leader), Mencius and CAESAR per-site latency.

Paper reference: Mencius performs as the slowest node (~60% slower than
CAESAR on average); Multi-Paxos with a far leader (Mumbai) is much slower
than with a well-placed leader (Ireland); CAESAR at 0% conflicts is the
fastest of the group at every site except the leader's own.
"""

from __future__ import annotations

import pytest

from repro.harness.figures import figure7_single_leader_comparison

from bench_utils import run_once


@pytest.mark.benchmark(group="figure7")
def test_figure7_single_leader_comparison(benchmark, save_result):
    result = run_once(benchmark, figure7_single_leader_comparison,
                      clients_per_site=10, duration_ms=5000.0, warmup_ms=1500.0)
    save_result("figure7_single_leader", result.table)

    caesar = result.series["caesar-0%"]
    mencius = result.series["mencius"]
    near = result.series["multipaxos-IR"]
    far = result.series["multipaxos-IN"]

    caesar_mean = sum(caesar.values()) / len(caesar)
    mencius_mean = sum(mencius.values()) / len(mencius)
    near_mean = sum(near.values()) / len(near)
    far_mean = sum(far.values()) / len(far)

    # Mencius tracks the slowest node: clearly slower than CAESAR on average.
    assert mencius_mean > caesar_mean * 1.3
    # Moving the Multi-Paxos leader from Ireland to Mumbai hurts every other site.
    assert far_mean > near_mean
    for site in ("VA", "OH", "DE", "IE"):
        assert far[site] > near[site]
    # With the leader in Mumbai, Mumbai's own clients are the least penalised site.
    assert far["IN"] == min(far.values())
