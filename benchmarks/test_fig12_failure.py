"""Figure 12: throughput timeline when one replica crashes mid-run.

Paper reference: after the crash the throughput dips for a few seconds while
the crashed site's clients time out and reconnect, then returns to normal;
both CAESAR and EPaxos keep the system available (no unavailability window
beyond the client-reconnection dip).
"""

from __future__ import annotations

import pytest

from repro.harness.figures import figure12_failure_timeline

from bench_utils import run_once


@pytest.mark.benchmark(group="figure12")
def test_figure12_failure_timeline(benchmark, save_result):
    result = run_once(benchmark, figure12_failure_timeline,
                      protocols=("caesar", "epaxos"), clients_per_site=20,
                      crash_at_ms=8000.0, total_ms=20000.0)
    save_result("figure12_failure_timeline", result.table)

    for protocol in ("caesar", "epaxos"):
        series = result.series[protocol]
        before = sum(series[f"{t}s"] for t in range(4, 8)) / 4.0
        dip = min(series["8s"], series["9s"], series["10s"])
        after = sum(series[f"{t}s"] for t in range(15, 19)) / 4.0
        # Throughput is nonzero before the crash, dips when it happens, and
        # recovers once clients reconnect (availability is preserved).
        assert before > 0
        assert dip < before
        assert after > dip
        assert after > before * 0.5
