"""Microbenchmark of the decision-path data structures.

Times the three operations the ordering layer performs per proposal —
predecessor computation, wait-condition evaluation/notification, and the
history UPDATE — at several per-key bucket sizes, for both the optimized
implementations (interned bitsets, timestamp-sorted buckets, incremental
wait bookkeeping; :mod:`repro.core.history` / :mod:`repro.core.predecessors`)
and the naive reference implementations kept in :mod:`repro.core.reference`.

Because both variants run interleaved in the same process on the same data,
the reported speedups are meaningful even on noisy shared hosts (each
sample is a best-of-``REPS`` minimum).  The optimized ops/second land in
``BENCH_micro_decision_path.json`` and are regression-gated by
``compare_perf.py`` alongside the sweep benchmark; the per-size speedup
table is written to ``benchmarks/results/micro_decision_path.txt``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict

import pytest

from repro.consensus.ballots import Ballot
from repro.consensus.command import Command
from repro.consensus.timestamps import LogicalTimestamp
from repro.core.history import CommandHistory, CommandStatus
from repro.core.predecessors import WaitManager, compute_predecessor_mask
from repro.core.reference import (ReferenceCommandHistory, ReferenceWaitManager,
                                  reference_compute_predecessors)
from repro.metrics.perf import PerfRecord, write_record

from bench_utils import RESULTS_DIR

#: Per-key bucket sizes the operations are timed at.
BUCKET_SIZES = (64, 256, 1024)

#: Best-of-N repetitions per sample (defends against scheduler noise).
REPS = 3

#: Parked proposals / finalized entries in the wait-path sample.
PARKED = 8
NOTIFIES = 64

BALLOT = Ballot.initial(0)


def ts(counter: int, node: int = 0) -> LogicalTimestamp:
    return LogicalTimestamp(counter, node)


def make_commands(count: int, key: str = "hot") -> list:
    return [Command(command_id=(0, seq), key=key, operation="put",
                    value=f"v{seq}", origin=0) for seq in range(count)]


def fill(history, commands, status=CommandStatus.FAST_PENDING) -> None:
    """Insert ``commands`` with timestamps 1..N on their shared key."""
    for offset, command in enumerate(commands):
        history.update(command, ts(offset + 1), set(), status, BALLOT)


def best_of(fn: Callable[[], int]) -> tuple:
    """Run ``fn`` (which returns an op count) REPS times; (ops, min seconds)."""
    ops = 0
    best = float("inf")
    for _ in range(REPS):
        started = time.perf_counter()
        ops = fn()
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    return ops, best


# ----------------------------------------------------------- the three shapes

def time_compute_predecessors(size: int) -> Dict[str, float]:
    """Predecessors of a fresh command proposed after ``size`` bucket entries."""
    commands = make_commands(size)
    probe = Command(command_id=(1, 0), key="hot", operation="put", value="p",
                    origin=0)
    probe_ts = ts(size + 1)
    iterations = 2000

    optimized = CommandHistory()
    fill(optimized, commands)
    optimized.intern(probe.command_id)

    def run_optimized() -> int:
        for _ in range(iterations):
            compute_predecessor_mask(optimized, probe, probe_ts)
        return iterations

    reference = ReferenceCommandHistory()
    fill(reference, commands)

    def run_reference() -> int:
        for _ in range(iterations):
            reference_compute_predecessors(reference, probe, probe_ts, None)
        return iterations

    ops, seconds = best_of(run_optimized)
    ref_ops, ref_seconds = best_of(run_reference)
    return {"optimized": ops / seconds, "reference": ref_ops / ref_seconds,
            "ops": ops, "seconds": seconds}


def time_history_update(size: int) -> Dict[str, float]:
    """Cost of growing one key's bucket from empty to ``size`` entries."""
    commands = make_commands(size)

    def run_optimized() -> int:
        history = CommandHistory()
        fill(history, commands)
        return size

    def run_reference() -> int:
        history = ReferenceCommandHistory()
        fill(history, commands)
        return size

    ops, seconds = best_of(run_optimized)
    ref_ops, ref_seconds = best_of(run_reference)
    return {"optimized": ops / seconds, "reference": ref_ops / ref_seconds,
            "ops": ops, "seconds": seconds}


def time_wait_notify(size: int) -> Dict[str, float]:
    """Wait-condition bookkeeping: park PARKED proposals on a bucket of
    ``size`` blockers, then finalize NOTIFIES of them one by one.

    The optimized manager reclassifies just the changed entry per
    notification; the reference manager re-scans every parked proposal's
    whole bucket — the gap grows with the bucket size.
    """
    commands = make_commands(size)
    proposals = [Command(command_id=(2, seq), key="hot", operation="put",
                         value="w", origin=0) for seq in range(PARKED)]
    notifies = min(NOTIFIES, size)

    def run_optimized() -> int:
        history = CommandHistory()
        fill(history, commands)
        manager = WaitManager(history, lambda: 0.0)
        for proposal in proposals:
            manager.evaluate(proposal, ts(0, 1), lambda ok, waited: None)
        assert manager.parked_count() == PARKED
        for command in commands[:notifies]:
            entry = history.update(command, history.get(command.command_id).timestamp,
                                   set(), CommandStatus.STABLE, BALLOT)
            manager.notify_entry(entry)
        return PARKED + notifies

    def run_reference() -> int:
        history = ReferenceCommandHistory()
        fill(history, commands)
        manager = ReferenceWaitManager(history, lambda: 0.0)
        for proposal in proposals:
            manager.evaluate(proposal, ts(0, 1), lambda ok, waited: None)
        assert manager.parked_count() == PARKED
        for command in commands[:notifies]:
            history.update(command, history.get(command.command_id).timestamp,
                           set(), CommandStatus.STABLE, BALLOT)
            manager.notify_change(command.key)
        return PARKED + notifies

    ops, seconds = best_of(run_optimized)
    ref_ops, ref_seconds = best_of(run_reference)
    return {"optimized": ops / seconds, "reference": ref_ops / ref_seconds,
            "ops": ops, "seconds": seconds}


OPERATIONS = {
    "compute_predecessors": time_compute_predecessors,
    "history_update": time_history_update,
    "wait_evaluate_notify": time_wait_notify,
}


@pytest.mark.benchmark(group="micro")
def test_decision_path_microbench(benchmark, save_result):
    """Ops/second of the decision-path operations, optimized vs reference."""

    def run_all():
        samples: Dict[str, Dict[int, Dict[str, float]]] = {}
        for name, timer in OPERATIONS.items():
            samples[name] = {size: timer(size) for size in BUCKET_SIZES}
        return samples

    samples = benchmark.pedantic(run_all, rounds=1, iterations=1)

    total_ops = sum(cell["ops"] for sizes in samples.values()
                    for cell in sizes.values())
    total_seconds = sum(cell["seconds"] for sizes in samples.values()
                        for cell in sizes.values())
    record = PerfRecord(
        name="micro_decision_path",
        wall_seconds=total_seconds,
        events_executed=int(total_ops),
        events_per_second=(total_ops / total_seconds) if total_seconds else 0.0,
        extra={
            "bucket_sizes": list(BUCKET_SIZES),
            "ops_per_second": {
                name: {str(size): round(cell["optimized"], 1)
                       for size, cell in sizes.items()}
                for name, sizes in samples.items()},
            "reference_ops_per_second": {
                name: {str(size): round(cell["reference"], 1)
                       for size, cell in sizes.items()}
                for name, sizes in samples.items()},
        })
    write_record(record, RESULTS_DIR)

    lines = [f"{'operation':<24} {'bucket':>6} {'optimized/s':>14} "
             f"{'reference/s':>14} {'speedup':>8}"]
    for name, sizes in samples.items():
        for size, cell in sizes.items():
            speedup = cell["optimized"] / cell["reference"]
            lines.append(f"{name:<24} {size:>6} {cell['optimized']:>14,.0f} "
                         f"{cell['reference']:>14,.0f} {speedup:>7.1f}x")
    save_result("micro_decision_path", "\n".join(lines))

    # The algorithmic wins must show at the largest bucket size: predecessor
    # computation is O(suffix) instead of O(bucket), and a wait notification
    # is O(parked) bit operations instead of a full per-proposal re-scan.
    largest = BUCKET_SIZES[-1]
    for name in ("compute_predecessors", "wait_evaluate_notify"):
        cell = samples[name][largest]
        assert cell["optimized"] > 2.0 * cell["reference"], (
            f"{name} at bucket={largest}: optimized {cell['optimized']:,.0f}/s "
            f"not clearly faster than reference {cell['reference']:,.0f}/s")
    # The update path keeps sorted-bucket + interner bookkeeping, so parity
    # (not speedup) is the requirement against the naive dict/set insert.
    update = samples["history_update"][largest]
    assert update["optimized"] > 0.3 * update["reference"]
